//! # em-service
//!
//! A long-running **multi-tenant job service** over the EM-BSP\* simulation:
//! many concurrent BSP programs share one physical disk array and one
//! compute-pool budget, with *counted parallel I/O* as the billing signal.
//!
//! The paper's simulation is a batch artifact — one program, one
//! [`DiskArray`], one [`CostReport`]. This crate turns it into a service:
//!
//! * **Admission control** ([`SimService::admit`]) is computed from each
//!   job's *declared* budgets μ (`max_state_bytes`) and γ
//!   (`max_comm_bytes`): a job reserves `v·μ + γ` bytes of the shared
//!   memory budget and a disjoint track region of the shared substrate.
//!   A job that does not fit is rejected with a typed [`AdmissionError`]
//!   — and an admitted tenant is never disturbed by later rejections.
//! * **Isolation + fairness**: each tenant runs on its own
//!   [`DiskArray`] over a [`em_disk::RegionBackend`] slice of one
//!   [`SharedDiskSubstrate`]; concurrent stripes are serialized by the
//!   substrate's fair round-robin arbiter, so co-tenancy affects wall
//!   clock only.
//! * **Metering**: every tenant's [`CostReport`] (counted
//!   [`em_disk::IoStats`], per-phase I/O, `PhaseWall` timings) is
//!   accumulated per stage and filed into a [`ServiceReport`] ledger at
//!   [`TenantLease::complete`]. Because counting lives in the tenant's own
//!   array *above* the shared media, per-tenant counted I/O is
//!   bit-identical to the same job run solo on a private array.
//!
//! A [`TenantLease`] implements [`em_bsp::Executor`], so whole CGM
//! pipelines (`cgm_sort`, `cgm_permute`, …) run as tenants unchanged.
//!
//! ```
//! use em_core::EmMachine;
//! use em_service::{JobSpec, ServiceConfig, SimService};
//! use em_bsp::{BspProgram, Executor, Mailbox, Step};
//!
//! struct Double;
//! impl BspProgram for Double {
//!     type State = u64;
//!     type Msg = u64;
//!     fn superstep(&self, _: usize, _: &mut Mailbox<u64>, s: &mut u64) -> Step {
//!         *s *= 2;
//!         Step::Halt
//!     }
//!     fn max_state_bytes(&self) -> usize {
//!         8
//!     }
//! }
//!
//! let service = SimService::new(ServiceConfig::new(2, 64, 4096, 1 << 20));
//! let machine = EmMachine::uniprocessor(1 << 16, 2, 64, 1);
//! let lease = service
//!     .admit(JobSpec::new("double", 7, machine, 8).with_budgets(8, 64).with_tracks(64))
//!     .unwrap();
//! let out = lease.execute(&Double, (0..8u64).collect()).unwrap();
//! assert_eq!(out.states[3], 6);
//! let record = lease.complete();
//! assert!(record.stages[0].io.parallel_ops > 0);
//! ```

#![warn(missing_docs)]

use em_bsp::{BspProgram, ExecError, Executor, RunResult};
use em_core::{ComputeMode, ComputePool, CostReport, EmError, SeqEmSimulator};
use em_disk::{crc32, DiskArray, FaultPlan, SharedDiskSubstrate};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared-resource budgets of a [`SimService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// `D` — drives of the shared physical array.
    pub num_disks: usize,
    /// `B` — track (block) size in bytes. Every admitted machine must
    /// match this shape.
    pub block_bytes: usize,
    /// Reservable tracks per drive, carved into disjoint tenant regions.
    pub tracks_per_disk: usize,
    /// Shared compute-pool memory budget in bytes; each tenant reserves
    /// `v·μ + γ` of it ([`JobSpec::reservation_bytes`]).
    pub mem_budget_bytes: usize,
    /// Per-tenant ceiling on the declared γ envelope. Defaults to the
    /// whole memory budget (i.e. effectively unlimited).
    pub max_comm_bytes: usize,
    /// Maximum concurrently admitted tenants (compute-pool slots).
    /// Defaults to `usize::MAX`.
    pub compute_slots: usize,
}

impl ServiceConfig {
    /// A service over `num_disks × tracks_per_disk` tracks of
    /// `block_bytes` each, with the given shared memory budget and no
    /// extra γ or slot limits.
    pub fn new(
        num_disks: usize,
        block_bytes: usize,
        tracks_per_disk: usize,
        mem_budget_bytes: usize,
    ) -> Self {
        ServiceConfig {
            num_disks,
            block_bytes,
            tracks_per_disk,
            mem_budget_bytes,
            max_comm_bytes: mem_budget_bytes,
            compute_slots: usize::MAX,
        }
    }

    /// Cap the per-tenant declared γ envelope.
    pub fn with_max_comm_bytes(mut self, max: usize) -> Self {
        self.max_comm_bytes = max;
        self
    }

    /// Cap the number of concurrently admitted tenants.
    pub fn with_compute_slots(mut self, slots: usize) -> Self {
        self.compute_slots = slots;
        self
    }
}

/// A tenant's job-lifecycle policy: how long its work may take, and how
/// the service reacts to transient failures before giving up.
///
/// The default policy is the pre-hardening behavior: no deadline, no
/// retries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobPolicy {
    /// Wall-clock budget, in microseconds, for each [`Executor::execute`]
    /// call (including its retries). Checked *before* every attempt, so a
    /// deadline of `Some(0)` deterministically refuses to start.
    pub deadline_micros: Option<u64>,
    /// Attempts beyond the first for a transiently-failing stage
    /// ([`ServiceError::is_transient`]). Unrecoverable failures never
    /// retry — they quarantine.
    pub max_retries: u32,
    /// Base, in microseconds, of the exponential backoff slept between
    /// retry attempts. The actual delay is deterministic given the job
    /// seed: `base · 2^attempt` plus a seeded jitter in `[0, base)`.
    pub backoff_base_micros: u64,
}

impl JobPolicy {
    /// Set the per-`execute` wall-clock deadline in microseconds.
    pub fn with_deadline_micros(mut self, deadline: u64) -> Self {
        self.deadline_micros = Some(deadline);
        self
    }

    /// Set the retry budget for transient failures.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Set the exponential-backoff base in microseconds.
    pub fn with_backoff_base_micros(mut self, base: u64) -> Self {
        self.backoff_base_micros = base;
        self
    }
}

/// The deterministic retry delay: `base · 2^attempt` microseconds plus a
/// seeded jitter in `[0, base)`. A pure function of `(seed, attempt,
/// base)` — identically-seeded runs back off identically, so soak runs
/// stay reproducible even through their retry schedules.
pub fn retry_backoff_micros(seed: u64, attempt: u32, base: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    // splitmix64-style finalizer for the jitter.
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    base.saturating_mul(1u64 << attempt.min(16)).saturating_add(z % base)
}

/// One job's declared shape and budgets, as submitted for admission.
///
/// μ and γ are *declarations*: admission reserves `v·μ + γ` bytes of the
/// shared budget, and at run time every executed program's
/// `max_state_bytes`/`max_comm_bytes` must fit under them (typed
/// [`ServiceError`] otherwise) — a tenant cannot bill less than it uses.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Ledger name of the job (not required to be unique; the ledger
    /// sorts by `(name, seed)`).
    pub name: String,
    /// Seed of the job's simulator (message placement randomness).
    pub seed: u64,
    /// The EM-BSP\* machine the job is priced against. Its `D` and `B`
    /// must match the service's shared array shape.
    pub machine: em_core::EmMachine,
    /// `v` — virtual processors the job will run.
    pub v: usize,
    /// μ — declared per-virtual-processor context bound, in bytes.
    pub mu: usize,
    /// γ — declared per-virtual-processor communication envelope, in
    /// bytes (including the 16-byte message headers).
    pub gamma: usize,
    /// Track-region request, per drive, on the shared substrate.
    pub tracks: usize,
    /// Lifecycle policy: deadline, retry budget, backoff.
    pub policy: JobPolicy,
    /// Fault schedule injected into the tenant's region array, directly
    /// above the shared media — the per-tenant equivalent of a simulator
    /// fault plan. Used by the chaos harness to fail one tenant without
    /// touching its neighbors.
    pub fault_plan: Option<FaultPlan>,
}

impl JobSpec {
    /// A spec with zero budgets; fill them in with
    /// [`JobSpec::with_budgets`] and [`JobSpec::with_tracks`].
    pub fn new(name: impl Into<String>, seed: u64, machine: em_core::EmMachine, v: usize) -> Self {
        JobSpec {
            name: name.into(),
            seed,
            machine,
            v,
            mu: 0,
            gamma: 0,
            tracks: 0,
            policy: JobPolicy::default(),
            fault_plan: None,
        }
    }

    /// Declare the μ/γ budgets (bytes).
    pub fn with_budgets(mut self, mu: usize, gamma: usize) -> Self {
        self.mu = mu;
        self.gamma = gamma;
        self
    }

    /// Declare the per-drive track-region request.
    pub fn with_tracks(mut self, tracks: usize) -> Self {
        self.tracks = tracks;
        self
    }

    /// Attach a lifecycle policy (deadline, retries, backoff).
    pub fn with_policy(mut self, policy: JobPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Inject a fault schedule into this tenant's region array.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The admission formula: `v·μ + γ` bytes of the shared memory
    /// budget.
    pub fn reservation_bytes(&self) -> usize {
        self.v.saturating_mul(self.mu).saturating_add(self.gamma)
    }
}

/// Why a job was refused admission. Rejection never disturbs
/// already-admitted tenants: no resource is held by a rejected job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The job's `v·μ + γ` reservation does not fit in what remains of
    /// the shared memory budget.
    BudgetExceeded {
        /// Bytes the job asked to reserve.
        requested: usize,
        /// Bytes already reserved by admitted tenants.
        reserved: usize,
        /// The shared budget ([`ServiceConfig::mem_budget_bytes`]).
        budget: usize,
    },
    /// The declared γ envelope exceeds the per-tenant ceiling.
    CommEnvelopeExceeded {
        /// Declared γ, in bytes.
        gamma: usize,
        /// The ceiling ([`ServiceConfig::max_comm_bytes`]).
        max: usize,
    },
    /// No contiguous track region of the requested size is available on
    /// the shared substrate.
    RegionExhausted {
        /// Tracks per drive the job asked for.
        requested: usize,
        /// Tracks per drive currently unreserved (may be fragmented).
        free: usize,
    },
    /// The job's machine shape does not match the shared array.
    ShapeMismatch {
        /// The job's `(D, B)`.
        got: (usize, usize),
        /// The service's `(D, B)`.
        expected: (usize, usize),
    },
    /// All compute-pool slots are occupied.
    ComputePoolExceeded {
        /// Currently admitted tenants.
        active: usize,
        /// The slot cap ([`ServiceConfig::compute_slots`]).
        slots: usize,
    },
    /// The job's machine or budgets fail basic validation (zero `v`,
    /// zero tracks, invalid EM machine).
    InvalidSpec(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::BudgetExceeded { requested, reserved, budget } => write!(
                f,
                "v*mu+gamma reservation of {requested} B does not fit: {reserved} of {budget} B already reserved"
            ),
            AdmissionError::CommEnvelopeExceeded { gamma, max } => {
                write!(f, "declared gamma = {gamma} B exceeds the per-tenant envelope of {max} B")
            }
            AdmissionError::RegionExhausted { requested, free } => write!(
                f,
                "no contiguous region of {requested} tracks/drive available ({free} free, possibly fragmented)"
            ),
            AdmissionError::ShapeMismatch { got, expected } => write!(
                f,
                "job machine is {}x{}B but the shared array is {}x{}B",
                got.0, got.1, expected.0, expected.1
            ),
            AdmissionError::ComputePoolExceeded { active, slots } => {
                write!(f, "all {slots} compute slots are busy ({active} tenants active)")
            }
            AdmissionError::InvalidSpec(msg) => write!(f, "invalid job spec: {msg}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A runtime failure inside an admitted tenant.
///
/// Marked `#[non_exhaustive]`: lifecycle hardening will keep growing this
/// taxonomy, and downstream matches must keep a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// A program's `max_state_bytes` exceeds the tenant's declared μ.
    DeclaredMuExceeded {
        /// μ declared at admission.
        declared: usize,
        /// The program's actual `max_state_bytes`.
        actual: usize,
    },
    /// A program's `max_comm_bytes` exceeds the tenant's declared γ.
    DeclaredGammaExceeded {
        /// γ declared at admission.
        declared: usize,
        /// The program's actual `max_comm_bytes`.
        actual: usize,
    },
    /// The underlying simulation failed.
    Run(EmError),
    /// The tenant hit an unrecoverable disk fault and was quarantined:
    /// its record is filed with [`TenantOutcome::Quarantined`], its
    /// region and budget are returned to the pool, and every further
    /// `execute` on the lease fails with this error. Other tenants are
    /// never disturbed.
    Quarantined {
        /// Compound superstep of the fatal failure (0 if unknown).
        step: usize,
    },
    /// The tenant's [`JobPolicy::deadline_micros`] expired before an
    /// attempt could start.
    DeadlineExceeded {
        /// Wall-clock microseconds elapsed in this `execute` call.
        elapsed_micros: u64,
        /// The configured deadline.
        deadline_micros: u64,
    },
}

impl ServiceError {
    /// Whether retrying the stage could plausibly succeed: true exactly
    /// for simulation failures rooted in a transient disk error
    /// ([`em_disk::DiskError::is_transient`]). Quarantines, deadlines and
    /// declared-budget violations are deterministic — retrying cannot
    /// help.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServiceError::Run(EmError::Disk(e)) if e.is_transient())
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::DeclaredMuExceeded { declared, actual } => {
                write!(f, "program needs mu = {actual} B but the tenant declared {declared} B")
            }
            ServiceError::DeclaredGammaExceeded { declared, actual } => {
                write!(f, "program needs gamma = {actual} B but the tenant declared {declared} B")
            }
            ServiceError::Run(e) => write!(f, "simulation failed: {e}"),
            ServiceError::Quarantined { step } => write!(
                f,
                "tenant quarantined after an unrecoverable fault at superstep {step}; \
                 its resources were reclaimed"
            ),
            ServiceError::DeadlineExceeded { elapsed_micros, deadline_micros } => {
                write!(f, "deadline of {deadline_micros} us exceeded ({elapsed_micros} us elapsed)")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Run(e) => Some(e),
            _ => None,
        }
    }
}

/// Budget book-keeping guarded by the service mutex.
struct PoolState {
    reserved_bytes: usize,
    active: usize,
    records: Vec<TenantRecord>,
}

struct ServiceInner {
    cfg: ServiceConfig,
    substrate: SharedDiskSubstrate,
    pool: Mutex<PoolState>,
    /// One persistent compute pool shared by every `Threaded` tenant the
    /// service admits: job churn never pays compute-thread spawn cost, and
    /// the service's thread count stays bounded regardless of how many
    /// tenants come and go. Lazily created by the first `Threaded`
    /// admission.
    compute: Mutex<Option<ComputePool>>,
}

impl ServiceInner {
    /// Return a tenant's reservations to the pool.
    fn release(&self, reservation_bytes: usize, base: usize, tracks: usize) {
        self.substrate.release_region(base, tracks);
        let mut pool = self.pool.lock();
        pool.reserved_bytes -= reservation_bytes;
        pool.active -= 1;
    }
}

/// The multi-tenant simulation service. Cloning the handle is cheap; all
/// clones share one substrate, budget pool and ledger.
#[derive(Clone)]
pub struct SimService {
    inner: Arc<ServiceInner>,
}

impl SimService {
    /// Bring up a service over a fresh shared substrate.
    pub fn new(cfg: ServiceConfig) -> Self {
        SimService {
            inner: Arc::new(ServiceInner {
                substrate: SharedDiskSubstrate::new(cfg.num_disks, cfg.tracks_per_disk),
                cfg,
                pool: Mutex::new(PoolState { reserved_bytes: 0, active: 0, records: Vec::new() }),
                compute: Mutex::new(None),
            }),
        }
    }

    /// The service's shared-resource budgets.
    pub fn config(&self) -> ServiceConfig {
        self.inner.cfg
    }

    /// Bytes of the shared memory budget currently reserved by admitted
    /// tenants.
    pub fn reserved_bytes(&self) -> usize {
        self.inner.pool.lock().reserved_bytes
    }

    /// Currently admitted (not yet completed) tenants.
    pub fn active_tenants(&self) -> usize {
        self.inner.pool.lock().active
    }

    /// Tracks per drive not reserved by any tenant region.
    pub fn tracks_free(&self) -> usize {
        self.inner.substrate.tracks_free()
    }

    /// Total fair stripe slots granted by the substrate arbiter.
    pub fn slots_granted(&self) -> u64 {
        self.inner.substrate.slots_granted()
    }

    /// Admit a job with a default simulator
    /// (`SeqEmSimulator::new(spec.machine).with_seed(spec.seed)`).
    pub fn admit(&self, spec: JobSpec) -> Result<TenantLease, AdmissionError> {
        let sim = SeqEmSimulator::new(spec.machine).with_seed(spec.seed);
        self.admit_with(spec, sim)
    }

    /// The service-wide persistent compute pool, lazily created on the
    /// first `Threaded` admission and shared by every later one. Sized to
    /// the host's parallelism — chunking (hence determinism) is governed
    /// by each tenant's [`ComputeMode`], never by pool size, so tenants
    /// with different `Threaded(n)` settings share it safely.
    fn shared_compute_pool(&self) -> ComputePool {
        self.inner
            .compute
            .lock()
            .get_or_insert_with(|| {
                let workers =
                    std::thread::available_parallelism().map(usize::from).unwrap_or(1).max(2);
                ComputePool::new(workers)
            })
            .clone()
    }

    /// Worker threads in the service's shared compute pool, if it has
    /// been created (observability for pool-reuse tests).
    pub fn compute_pool_workers(&self) -> Option<usize> {
        self.inner.compute.lock().as_ref().map(ComputePool::workers)
    }

    /// Admit a job with a caller-configured simulator (pipeline, cache,
    /// compute mode…). The simulator's machine must match `spec.machine`'s
    /// disk shape, which in turn must match the shared array.
    ///
    /// Checks run in a fixed order — shape, γ envelope, compute slots,
    /// memory budget, track region — and a failure at any point leaves
    /// the pool exactly as it was, so rejections never disturb admitted
    /// tenants.
    pub fn admit_with(
        &self,
        spec: JobSpec,
        sim: SeqEmSimulator,
    ) -> Result<TenantLease, AdmissionError> {
        // Resolve any `Auto` knob requests now, against the *declared*
        // spec shape, so the tenant's effective configuration is fixed
        // before pool shares are granted and before its disk array is
        // built — and so the resolution can be logged in the ledger. The
        // resolution only picks wall-clock knobs; it cannot change the
        // tenant's counted I/O or final states.
        let sim = sim.resolved_for(spec.v, spec.mu, spec.gamma);
        let resolved = sim.resolved_config().map(|rc| rc.deterministic_line());
        // A `Threaded` tenant without its own pool shares the service's
        // persistent one: repeated admissions reuse the same
        // `em-compute-w*` threads instead of spawning per-tenant pools.
        let sim = match sim.compute_mode() {
            ComputeMode::Threaded(n) if n > 1 && !sim.has_compute_pool() => {
                sim.with_compute_pool(self.shared_compute_pool())
            }
            _ => sim,
        };
        let cfg = &self.inner.cfg;
        let machine = sim.machine();
        if machine.d != cfg.num_disks || machine.b_bytes != cfg.block_bytes {
            return Err(AdmissionError::ShapeMismatch {
                got: (machine.d, machine.b_bytes),
                expected: (cfg.num_disks, cfg.block_bytes),
            });
        }
        if spec.v == 0 {
            return Err(AdmissionError::InvalidSpec("v must be >= 1".into()));
        }
        if spec.tracks == 0 {
            return Err(AdmissionError::InvalidSpec("track region must be >= 1".into()));
        }
        if let Err(e) = machine.validate() {
            return Err(AdmissionError::InvalidSpec(e.to_string()));
        }
        let disk_cfg = sim.disk_config().map_err(|e| AdmissionError::InvalidSpec(e.to_string()))?;
        if spec.gamma > cfg.max_comm_bytes {
            return Err(AdmissionError::CommEnvelopeExceeded {
                gamma: spec.gamma,
                max: cfg.max_comm_bytes,
            });
        }
        let requested = spec.reservation_bytes();
        {
            let mut pool = self.inner.pool.lock();
            if pool.active >= cfg.compute_slots {
                return Err(AdmissionError::ComputePoolExceeded {
                    active: pool.active,
                    slots: cfg.compute_slots,
                });
            }
            if pool.reserved_bytes + requested > cfg.mem_budget_bytes {
                return Err(AdmissionError::BudgetExceeded {
                    requested,
                    reserved: pool.reserved_bytes,
                    budget: cfg.mem_budget_bytes,
                });
            }
            pool.reserved_bytes += requested;
            pool.active += 1;
        }
        let base = match self.inner.substrate.reserve_region(spec.tracks) {
            Some(base) => base,
            None => {
                // Roll the budget back; the pool is exactly as before.
                let mut pool = self.inner.pool.lock();
                pool.reserved_bytes -= requested;
                pool.active -= 1;
                return Err(AdmissionError::RegionExhausted {
                    requested: spec.tracks,
                    free: self.inner.substrate.tracks_free(),
                });
            }
        };
        let region = self.inner.substrate.region(base, spec.tracks);
        // The tenant's fault schedule sits directly above its region
        // slice of the shared media — faults hit this tenant's counted
        // array only, never the substrate or its neighbors.
        let disks =
            DiskArray::with_backend_and_faults(disk_cfg, Box::new(region), spec.fault_plan.clone());
        Ok(TenantLease {
            inner: self.inner.clone(),
            spec,
            base,
            sim,
            resolved,
            disks: Mutex::new(disks),
            stages: Mutex::new(Vec::new()),
            fingerprint: Mutex::new(0),
            quarantined: Mutex::new(None),
            completed: AtomicBool::new(false),
        })
    }

    /// The ledger of completed tenants, sorted by `(name, seed)`.
    pub fn report(&self) -> ServiceReport {
        let mut records = self.inner.pool.lock().records.clone();
        records.sort_by(|a, b| (&a.name, a.seed).cmp(&(&b.name, b.seed)));
        ServiceReport { records }
    }
}

/// An admitted tenant: a private simulator + disk array over the
/// tenant's region, with per-stage metering.
///
/// Implements [`Executor`], so CGM pipelines run on a lease exactly as
/// they would on a bare simulator. Every `execute` appends one
/// [`CostReport`] stage and folds the final states into the tenant's
/// rolling fingerprint. Call [`TenantLease::complete`] to file the
/// tenant's [`TenantRecord`] and return its resources to the pool;
/// dropping an uncompleted lease releases the resources without filing
/// a record.
pub struct TenantLease {
    /// Back-reference for resource release; not part of the tenant's
    /// observable identity.
    inner: Arc<ServiceInner>,
    spec: JobSpec,
    base: usize,
    sim: SeqEmSimulator,
    /// The admission-time [`em_core::AutoTuner`] resolution, rendered as
    /// its deterministic line; `None` when no knob was requested `Auto`.
    resolved: Option<String>,
    disks: Mutex<DiskArray>,
    stages: Mutex<Vec<CostReport>>,
    fingerprint: Mutex<u32>,
    /// Set once by the first unrecoverable fault; holds the record filed
    /// in the ledger. Sticky: every later `execute` fails immediately.
    quarantined: Mutex<Option<TenantRecord>>,
    completed: AtomicBool,
}

impl TenantLease {
    /// The admitted job spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The tenant's region base track on the shared substrate
    /// (observability; excluded from the deterministic ledger).
    pub fn base_track(&self) -> usize {
        self.base
    }

    /// The tenant's simulator (to inspect its machine or knobs).
    pub fn simulator(&self) -> &SeqEmSimulator {
        &self.sim
    }

    /// The admission-time `Auto` knob resolution as its deterministic
    /// line ([`em_core::ResolvedConfig::deterministic_line`]); `None`
    /// when the admitted simulator had no `Auto` request.
    pub fn resolved_line(&self) -> Option<&str> {
        self.resolved.as_deref()
    }

    /// Stages metered so far.
    pub fn stages_metered(&self) -> usize {
        self.stages.lock().len()
    }

    /// Rolling CRC-32 over the serialized final states of every stage so
    /// far. Two runs of the same job are bit-identical iff their
    /// fingerprints (and metered stages) match.
    pub fn state_fingerprint(&self) -> u32 {
        *self.fingerprint.lock()
    }

    /// Whether the tenant has been quarantined by an unrecoverable fault.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.lock().is_some()
    }

    /// File the tenant's record in the service ledger, release its
    /// region and budget reservation, and return the record. A
    /// quarantined tenant's record was already filed (and its resources
    /// already reclaimed) at quarantine time; completing it just returns
    /// that record.
    pub fn complete(self) -> TenantRecord {
        if let Some(record) = self.quarantined.lock().clone() {
            return record;
        }
        let record = TenantRecord {
            name: self.spec.name.clone(),
            seed: self.spec.seed,
            v: self.spec.v,
            mu: self.spec.mu,
            gamma: self.spec.gamma,
            tracks: self.spec.tracks,
            resolved: self.resolved.clone(),
            state_fingerprint: *self.fingerprint.lock(),
            outcome: TenantOutcome::Completed,
            stages: std::mem::take(&mut *self.stages.lock()),
        };
        self.inner.pool.lock().records.push(record.clone());
        if !self.completed.swap(true, Ordering::SeqCst) {
            self.inner.release(self.spec.reservation_bytes(), self.base, self.spec.tracks);
        }
        record
    }

    /// Quarantine the tenant after an unrecoverable fault: file its
    /// ledger record with the failure outcome, reclaim its region and
    /// budget so waiting jobs can use them, and poison the lease.
    fn quarantine(&self, step: usize) {
        let mut q = self.quarantined.lock();
        if q.is_some() {
            return;
        }
        let record = TenantRecord {
            name: self.spec.name.clone(),
            seed: self.spec.seed,
            v: self.spec.v,
            mu: self.spec.mu,
            gamma: self.spec.gamma,
            tracks: self.spec.tracks,
            resolved: self.resolved.clone(),
            state_fingerprint: *self.fingerprint.lock(),
            outcome: TenantOutcome::Quarantined { failed_step: step },
            stages: std::mem::take(&mut *self.stages.lock()),
        };
        self.inner.pool.lock().records.push(record.clone());
        *q = Some(record);
        if !self.completed.swap(true, Ordering::SeqCst) {
            self.inner.release(self.spec.reservation_bytes(), self.base, self.spec.tracks);
        }
    }
}

impl fmt::Debug for TenantLease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantLease")
            .field("spec", &self.spec)
            .field("base", &self.base)
            .field("stages_metered", &self.stages.lock().len())
            .finish_non_exhaustive()
    }
}

impl Drop for TenantLease {
    fn drop(&mut self) {
        if !self.completed.swap(true, Ordering::SeqCst) {
            self.inner.release(self.spec.reservation_bytes(), self.base, self.spec.tracks);
        }
    }
}

impl Executor for TenantLease {
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError> {
        if let Some(record) = self.quarantined.lock().as_ref() {
            let step = match record.outcome {
                TenantOutcome::Quarantined { failed_step } => failed_step,
                TenantOutcome::Completed => 0,
            };
            return Err(Box::new(ServiceError::Quarantined { step }) as ExecError);
        }
        if prog.max_state_bytes() > self.spec.mu {
            return Err(Box::new(ServiceError::DeclaredMuExceeded {
                declared: self.spec.mu,
                actual: prog.max_state_bytes(),
            }) as ExecError);
        }
        if prog.max_comm_bytes() > self.spec.gamma {
            return Err(Box::new(ServiceError::DeclaredGammaExceeded {
                declared: self.spec.gamma,
                actual: prog.max_comm_bytes(),
            }) as ExecError);
        }
        // A retry needs the initial states again; `P::State` is not
        // `Clone`, but it is `Serial` — keep the encoded form and decode
        // a fresh copy per attempt (the simulator would serialize them
        // anyway, so the round-trip is lossless by the Serial laws).
        let policy = self.spec.policy;
        let started = Instant::now();
        let encoded: Vec<Vec<u8>> = states.iter().map(em_serial::to_bytes).collect();
        drop(states);
        let mut attempt: u32 = 0;
        loop {
            if let Some(deadline) = policy.deadline_micros {
                let elapsed = started.elapsed().as_micros() as u64;
                if elapsed >= deadline {
                    return Err(Box::new(ServiceError::DeadlineExceeded {
                        elapsed_micros: elapsed,
                        deadline_micros: deadline,
                    }) as ExecError);
                }
            }
            let attempt_states = encoded
                .iter()
                .map(|b| em_serial::from_bytes::<P::State>(b))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| Box::new(ServiceError::Run(EmError::Decode(e))) as ExecError)?;
            let mut disks = self.disks.lock();
            let result = self.sim.run_on(&mut disks, prog, attempt_states);
            drop(disks);
            match result {
                Ok((res, report)) => {
                    let mut fp = self.fingerprint.lock();
                    *fp = fold_fingerprint(*fp, &res.states);
                    drop(fp);
                    self.stages.lock().push(report);
                    return Ok(res);
                }
                Err(e) => {
                    // Unrecoverable disk-rooted failures quarantine the
                    // tenant; transient ones retry under the policy; the
                    // rest (logic errors, budget violations) surface
                    // unchanged.
                    let step = match &e {
                        EmError::FaultUnrecoverable { step, .. } => Some(*step),
                        EmError::Disk(d) if !d.is_transient() => Some(0),
                        _ => None,
                    };
                    if let Some(step) = step {
                        self.quarantine(step);
                        return Err(Box::new(ServiceError::Quarantined { step }) as ExecError);
                    }
                    let err = ServiceError::Run(e);
                    if err.is_transient() && attempt < policy.max_retries {
                        std::thread::sleep(Duration::from_micros(retry_backoff_micros(
                            self.spec.seed,
                            attempt,
                            policy.backoff_base_micros,
                        )));
                        attempt += 1;
                        continue;
                    }
                    return Err(Box::new(err) as ExecError);
                }
            }
        }
    }
}

/// Fold a stage's final states into a rolling CRC-32 fingerprint.
fn fold_fingerprint<S: em_serial::Serial>(prev: u32, states: &[S]) -> u32 {
    let mut chained = prev.to_le_bytes().to_vec();
    for state in states {
        em_serial::to_bytes_into(state, &mut chained);
    }
    crc32(&chained)
}

/// The solo reference for service bit-identity: the same per-stage
/// metering and state fingerprinting as a [`TenantLease`], but on a
/// private [`DiskArray`] with no co-tenants and no admission control.
///
/// Run the identical pipeline through a lease and a `SoloRunner` built
/// from an identically-configured simulator; the metering invariant says
/// their [`CostReport::io`] sequences and fingerprints match exactly.
pub struct SoloRunner {
    sim: SeqEmSimulator,
    stages: Mutex<Vec<CostReport>>,
    fingerprint: Mutex<u32>,
}

impl SoloRunner {
    /// Wrap a configured simulator.
    pub fn new(sim: SeqEmSimulator) -> Self {
        SoloRunner { sim, stages: Mutex::new(Vec::new()), fingerprint: Mutex::new(0) }
    }

    /// Rolling CRC-32 over the serialized final states of every stage.
    pub fn state_fingerprint(&self) -> u32 {
        *self.fingerprint.lock()
    }

    /// The per-stage reports and final fingerprint.
    pub fn finish(self) -> (Vec<CostReport>, u32) {
        (self.stages.into_inner(), self.fingerprint.into_inner())
    }
}

impl Executor for SoloRunner {
    fn execute<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunResult<P::State>, ExecError> {
        let (res, report) = self.sim.run(prog, states).map_err(|e| Box::new(e) as ExecError)?;
        let mut fp = self.fingerprint.lock();
        *fp = fold_fingerprint(*fp, &res.states);
        drop(fp);
        self.stages.lock().push(report);
        Ok(res)
    }
}

/// How a tenant's ledger entry ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantOutcome {
    /// The tenant completed normally.
    Completed,
    /// The tenant hit an unrecoverable fault and was quarantined; its
    /// stages record only the work that completed before the failure.
    Quarantined {
        /// Compound superstep of the fatal failure (0 if unknown).
        failed_step: usize,
    },
}

/// One completed tenant's ledger entry: the job identity, declared
/// budgets, per-stage [`CostReport`]s and the final-state fingerprint.
#[derive(Debug, Clone)]
pub struct TenantRecord {
    /// Job name.
    pub name: String,
    /// Simulator seed.
    pub seed: u64,
    /// Declared `v`.
    pub v: usize,
    /// Declared μ (bytes).
    pub mu: usize,
    /// Declared γ (bytes).
    pub gamma: usize,
    /// Reserved tracks per drive.
    pub tracks: usize,
    /// The admission-time `Auto` knob resolution
    /// ([`em_core::ResolvedConfig::deterministic_line`]); `None` when the
    /// tenant's simulator had no `Auto` request.
    pub resolved: Option<String>,
    /// Rolling CRC-32 of all stages' serialized final states.
    pub state_fingerprint: u32,
    /// How the tenant ended: completed, or quarantined by a fault.
    pub outcome: TenantOutcome,
    /// One [`CostReport`] per executed program, in execution order.
    pub stages: Vec<CostReport>,
}

impl TenantRecord {
    /// Total counted parallel I/O operations across all stages.
    pub fn total_io_ops(&self) -> u64 {
        self.stages.iter().map(|s| s.io.parallel_ops).sum()
    }

    /// Serialize the record's *deterministic* fields as one JSON object
    /// (no wall-clock times, tenant ids or physical base tracks).
    pub fn deterministic_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                let per_disk = |v: &[u64]| {
                    let items: Vec<String> = v.iter().map(u64::to_string).collect();
                    format!("[{}]", items.join(","))
                };
                format!(
                    concat!(
                        "{{\"ops\":{},\"blocks_read\":{},\"blocks_written\":{},",
                        "\"bytes_read\":{},\"bytes_written\":{},",
                        "\"per_disk_reads\":{},\"per_disk_writes\":{},",
                        "\"retried_blocks\":{},\"recovery_ops\":{},",
                        "\"cache_hit_blocks\":{},\"cache_absorbed_writes\":{},",
                        "\"lambda\":{},\"io_time\":{},\"real_comm_bytes\":{},",
                        "\"fetch_ctx\":{},\"fetch_msg\":{},\"scatter\":{},",
                        "\"write_ctx\":{},\"routing\":{}}}"
                    ),
                    s.io.parallel_ops,
                    s.io.blocks_read,
                    s.io.blocks_written,
                    s.io.bytes_read,
                    s.io.bytes_written,
                    per_disk(&s.io.per_disk_reads),
                    per_disk(&s.io.per_disk_writes),
                    s.io.retried_blocks,
                    s.io.recovery_ops,
                    s.io.cache_hit_blocks,
                    s.io.cache_absorbed_writes,
                    s.lambda,
                    s.io_time,
                    s.real_comm_bytes,
                    s.phases.fetch_ctx,
                    s.phases.fetch_msg,
                    s.phases.scatter,
                    s.phases.write_ctx,
                    s.phases.routing,
                )
            })
            .collect();
        let outcome = match self.outcome {
            TenantOutcome::Completed => "completed".to_string(),
            TenantOutcome::Quarantined { failed_step } => format!("quarantined:{failed_step}"),
        };
        // The resolution line is integer-only and quote-free by
        // construction, so `{:?}` renders it as a plain JSON string.
        let resolved = match &self.resolved {
            Some(line) => format!("{line:?}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"name\":{:?},\"seed\":{},\"v\":{},\"mu\":{},\"gamma\":{},",
                "\"tracks\":{},\"resolved\":{},\"fingerprint\":{},\"outcome\":{:?},",
                "\"stages\":[{}]}}"
            ),
            self.name,
            self.seed,
            self.v,
            self.mu,
            self.gamma,
            self.tracks,
            resolved,
            self.state_fingerprint,
            outcome,
            stages.join(","),
        )
    }
}

/// The service ledger: every completed tenant, sorted by `(name, seed)`.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    records: Vec<TenantRecord>,
}

impl ServiceReport {
    /// The ledger entries, sorted by `(name, seed)`.
    pub fn records(&self) -> &[TenantRecord] {
        &self.records
    }

    /// One deterministic JSON object per line, one line per tenant,
    /// sorted by `(name, seed)`. Byte-identical across identically-seeded
    /// runs regardless of admission interleaving, scheduling or wall
    /// clock — this is the artifact the CI soak lane diffs.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.deterministic_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::{Mailbox, Step};
    use em_core::EmMachine;

    struct AddOne;
    impl BspProgram for AddOne {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, _: usize, _: &mut Mailbox<u64>, s: &mut u64) -> Step {
            *s += 1;
            Step::Halt
        }
        fn max_state_bytes(&self) -> usize {
            8
        }
    }

    fn machine() -> EmMachine {
        EmMachine::uniprocessor(1 << 16, 2, 64, 1)
    }

    fn spec(name: &str, seed: u64, v: usize) -> JobSpec {
        JobSpec::new(name, seed, machine(), v).with_budgets(8, 64).with_tracks(64)
    }

    #[test]
    fn lease_runs_and_meters_like_a_private_simulator() {
        let service = SimService::new(ServiceConfig::new(2, 64, 4096, 1 << 20));
        let lease = service.admit(spec("add", 3, 8)).unwrap();
        let out = lease.execute(&AddOne, (0..8u64).collect()).unwrap();
        assert_eq!(out.states, (1..=8u64).collect::<Vec<_>>());

        let solo = SeqEmSimulator::new(machine()).with_seed(3);
        let (solo_out, solo_report) = solo.run(&AddOne, (0..8u64).collect()).unwrap();
        assert_eq!(solo_out.states, out.states);

        let record = lease.complete();
        assert_eq!(record.stages.len(), 1);
        assert_eq!(record.stages[0].io, solo_report.io);
        assert_eq!(service.active_tenants(), 0);
        assert_eq!(service.reserved_bytes(), 0);
        assert_eq!(service.tracks_free(), 4096);
    }

    #[test]
    fn budget_over_reservation_is_rejected_without_disturbing_tenants() {
        let budget = 8 * 8 + 64 + 100; // one 8-vp tenant fits, two do not
        let service = SimService::new(ServiceConfig::new(2, 64, 4096, budget));
        let first = service.admit(spec("a", 1, 8)).unwrap();
        let err = service.admit(spec("b", 2, 8)).unwrap_err();
        assert!(matches!(err, AdmissionError::BudgetExceeded { requested: 128, .. }));
        // The admitted tenant is untouched and still runs.
        assert_eq!(service.active_tenants(), 1);
        first.execute(&AddOne, vec![1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        first.complete();
        // And its release makes room for the next job.
        service.admit(spec("b", 2, 8)).unwrap();
    }

    #[test]
    fn gamma_envelope_and_shape_and_slots_are_enforced() {
        let cfg =
            ServiceConfig::new(2, 64, 4096, 1 << 20).with_max_comm_bytes(32).with_compute_slots(1);
        let service = SimService::new(cfg);
        let err = service.admit(spec("big-gamma", 1, 4)).unwrap_err();
        assert!(matches!(err, AdmissionError::CommEnvelopeExceeded { gamma: 64, max: 32 }));

        let small = JobSpec::new("ok", 1, machine(), 4).with_budgets(8, 32).with_tracks(16);
        let lease = service.admit(small.clone()).unwrap();
        let err = service.admit(small.clone().with_budgets(8, 16)).unwrap_err();
        assert!(matches!(err, AdmissionError::ComputePoolExceeded { active: 1, slots: 1 }));
        lease.complete();

        let wrong = EmMachine::uniprocessor(1 << 16, 4, 64, 1);
        let err = service
            .admit(JobSpec::new("shape", 1, wrong, 4).with_budgets(8, 16).with_tracks(16))
            .unwrap_err();
        assert!(matches!(err, AdmissionError::ShapeMismatch { got: (4, 64), expected: (2, 64) }));
    }

    #[test]
    fn region_exhaustion_rolls_back_the_budget_reservation() {
        let service = SimService::new(ServiceConfig::new(2, 64, 100, 1 << 20));
        let lease = service.admit(spec("a", 1, 4).with_tracks(80)).unwrap();
        let before = service.reserved_bytes();
        let err = service.admit(spec("b", 2, 4).with_tracks(40)).unwrap_err();
        assert!(matches!(err, AdmissionError::RegionExhausted { requested: 40, free: 20 }));
        // The failed admission did not leak budget or slots.
        assert_eq!(service.reserved_bytes(), before);
        assert_eq!(service.active_tenants(), 1);
        lease.complete();
    }

    #[test]
    fn declared_budgets_are_enforced_at_run_time() {
        let service = SimService::new(ServiceConfig::new(2, 64, 4096, 1 << 20));
        let lease = service
            .admit(JobSpec::new("lowball", 1, machine(), 4).with_budgets(4, 64).with_tracks(64))
            .unwrap();
        let err = lease.execute(&AddOne, vec![1, 2, 3, 4]).unwrap_err();
        let err = err.downcast::<ServiceError>().unwrap();
        assert!(matches!(*err, ServiceError::DeclaredMuExceeded { declared: 4, actual: 8 }));
        // A rejected program costs nothing.
        assert_eq!(lease.stages_metered(), 0);
    }

    #[test]
    fn ledger_is_deterministic_and_sorted() {
        let run = || {
            let service = SimService::new(ServiceConfig::new(2, 64, 4096, 1 << 20));
            // Complete out of name order; the ledger must sort.
            let b = service.admit(spec("b", 2, 8)).unwrap();
            let a = service.admit(spec("a", 1, 8)).unwrap();
            b.execute(&AddOne, (0..8u64).collect()).unwrap();
            a.execute(&AddOne, (10..18u64).collect()).unwrap();
            b.complete();
            a.complete();
            service.report().deterministic_json()
        };
        let first = run();
        assert_eq!(first, run());
        let lines: Vec<&str> = first.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"name\":\"a\""));
        assert!(lines[1].starts_with("{\"name\":\"b\""));
    }

    #[test]
    fn transient_fault_is_retried_under_the_policy() {
        let service = SimService::new(ServiceConfig::new(2, 64, 4096, 1 << 20));
        let plan = FaultPlan::none().with_transient(0, 1);
        // Without retries the transient error surfaces raw...
        let lease = service.admit(spec("flaky", 3, 8).with_fault_plan(plan.clone())).unwrap();
        let err = lease.execute(&AddOne, (0..8u64).collect()).unwrap_err();
        let err = err.downcast::<ServiceError>().unwrap();
        assert!(err.is_transient(), "{err}");
        assert!(matches!(*err, ServiceError::Run(EmError::Disk(_))));
        drop(lease);
        // ...and with a retry budget the same job completes, with results
        // identical to an unfaulted solo run.
        let policy = JobPolicy::default().with_max_retries(2).with_backoff_base_micros(10);
        let lease =
            service.admit(spec("flaky", 3, 8).with_fault_plan(plan).with_policy(policy)).unwrap();
        let out = lease.execute(&AddOne, (0..8u64).collect()).unwrap();
        let solo = SeqEmSimulator::new(machine()).with_seed(3);
        let (solo_out, _) = solo.run(&AddOne, (0..8u64).collect()).unwrap();
        assert_eq!(out.states, solo_out.states);
        let record = lease.complete();
        assert_eq!(record.outcome, TenantOutcome::Completed);
    }

    #[test]
    fn zero_deadline_deterministically_refuses_to_start() {
        let service = SimService::new(ServiceConfig::new(2, 64, 4096, 1 << 20));
        let policy = JobPolicy::default().with_deadline_micros(0);
        let lease = service.admit(spec("late", 1, 8).with_policy(policy)).unwrap();
        let err = lease.execute(&AddOne, (0..8u64).collect()).unwrap_err();
        let err = err.downcast::<ServiceError>().unwrap();
        assert!(matches!(*err, ServiceError::DeadlineExceeded { deadline_micros: 0, .. }));
        assert!(!err.is_transient());
        // Nothing ran, nothing was metered.
        assert_eq!(lease.stages_metered(), 0);
    }

    #[test]
    fn retry_backoff_is_deterministic_and_exponential() {
        assert_eq!(retry_backoff_micros(7, 0, 100), retry_backoff_micros(7, 0, 100));
        assert_eq!(retry_backoff_micros(7, 3, 0), 0);
        for attempt in 0..4 {
            let d = retry_backoff_micros(7, attempt, 100);
            assert!(d >= 100u64 << attempt, "attempt {attempt}: {d}");
            assert!(d < (100u64 << attempt) + 100, "attempt {attempt}: {d}");
        }
    }

    #[test]
    fn quarantine_reclaims_resources_and_leaves_other_tenants_untouched() {
        // The faulty tenant runs alongside two healthy ones.
        let service = SimService::new(ServiceConfig::new(2, 64, 256, 1 << 20));
        let a = service.admit(spec("a", 1, 8).with_tracks(64)).unwrap();
        let bad = service
            .admit(
                spec("bad", 5, 8)
                    .with_tracks(128)
                    .with_fault_plan(FaultPlan::none().with_worker_death(0, 3)),
            )
            .unwrap();
        let c = service.admit(spec("c", 2, 8).with_tracks(64)).unwrap();

        a.execute(&AddOne, (0..8u64).collect()).unwrap();
        let err = bad.execute(&AddOne, (0..8u64).collect()).unwrap_err();
        let err = err.downcast::<ServiceError>().unwrap();
        assert!(matches!(*err, ServiceError::Quarantined { .. }), "{err}");
        assert!(bad.is_quarantined());
        // The quarantine is sticky...
        let err = bad.execute(&AddOne, (0..8u64).collect()).unwrap_err();
        let err = err.downcast::<ServiceError>().unwrap();
        assert!(matches!(*err, ServiceError::Quarantined { .. }));
        // ...its region and budget were reclaimed immediately (a new
        // tenant fits where the quarantined one sat)...
        let refill = service.admit(spec("refill", 9, 8).with_tracks(128)).unwrap();
        drop(refill);
        c.execute(&AddOne, (10..18u64).collect()).unwrap();
        let bad_record = bad.complete();
        assert!(matches!(bad_record.outcome, TenantOutcome::Quarantined { .. }));
        a.complete();
        c.complete();

        // ...and the healthy tenants' ledger lines are byte-identical to
        // the same jobs run with no faulty neighbor at all.
        let solo_service = SimService::new(ServiceConfig::new(2, 64, 256, 1 << 20));
        let a2 = solo_service.admit(spec("a", 1, 8).with_tracks(64)).unwrap();
        let c2 = solo_service.admit(spec("c", 2, 8).with_tracks(64)).unwrap();
        a2.execute(&AddOne, (0..8u64).collect()).unwrap();
        c2.execute(&AddOne, (10..18u64).collect()).unwrap();
        a2.complete();
        c2.complete();
        let solo_lines: Vec<String> =
            solo_service.report().deterministic_json().lines().map(String::from).collect();
        let multi_lines: Vec<String> = service
            .report()
            .deterministic_json()
            .lines()
            .filter(|l| !l.contains("\"name\":\"bad\""))
            .map(String::from)
            .collect();
        assert_eq!(solo_lines, multi_lines);
    }

    #[test]
    fn threaded_tenants_share_one_persistent_compute_pool() {
        let service = SimService::new(ServiceConfig::new(2, 64, 4096, 1 << 20));
        assert_eq!(service.compute_pool_workers(), None);
        let mut states = Vec::new();
        for round in 0..3u64 {
            let sim = SeqEmSimulator::new(machine())
                .with_seed(7)
                .with_compute_mode(ComputeMode::Threaded(2));
            let lease = service.admit_with(spec("pooled", round, 8), sim).unwrap();
            assert!(
                lease.simulator().has_compute_pool(),
                "Threaded admission must attach the shared pool"
            );
            states.push(lease.execute(&AddOne, (0..8u64).collect()).unwrap().states);
            lease.complete();
        }
        let workers = service.compute_pool_workers().expect("pool created at first admission");
        assert!(workers >= 2);
        // Pooled tenants compute exactly what a serial solo run computes.
        let solo = SeqEmSimulator::new(machine()).with_seed(7);
        let (solo_out, _) = solo.run(&AddOne, (0..8u64).collect()).unwrap();
        for s in &states {
            assert_eq!(s, &solo_out.states);
        }
        // Serial admissions never create or attach a pool.
        let lease = service.admit(spec("serial", 99, 8)).unwrap();
        assert!(!lease.simulator().has_compute_pool());
        lease.complete();
    }

    #[test]
    fn dropping_an_uncompleted_lease_releases_resources_without_a_record() {
        let service = SimService::new(ServiceConfig::new(2, 64, 256, 1 << 20));
        {
            let _lease = service.admit(spec("doomed", 9, 8).with_tracks(256)).unwrap();
            assert_eq!(service.tracks_free(), 0);
        }
        assert_eq!(service.tracks_free(), 256);
        assert_eq!(service.active_tenants(), 0);
        assert!(service.report().records().is_empty());
    }
}
