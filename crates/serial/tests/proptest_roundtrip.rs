//! Property-based round-trip tests for the codec: `decode(encode(v)) == v`
//! and `encode(v).len() == v.encoded_len()` for arbitrary values, plus
//! robustness against arbitrary (possibly garbage) input bytes.

use em_serial::{from_bytes, to_bytes, Reader, Serial};
use proptest::prelude::*;

fn assert_round_trip<T: Serial + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = to_bytes(v);
    assert_eq!(bytes.len(), v.encoded_len(), "encoded_len mismatch for {v:?}");
    let back: T = from_bytes(&bytes).expect("decode failed");
    assert_eq!(&back, v);
}

proptest! {
    #[test]
    fn u64_round_trip(v: u64) { assert_round_trip(&v); }

    #[test]
    fn i128_round_trip(v: i128) { assert_round_trip(&v); }

    #[test]
    fn f64_bits_round_trip(v: u64) {
        // Compare via bits so NaNs round-trip too.
        let f = f64::from_bits(v);
        let bytes = to_bytes(&f);
        let back: f64 = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.to_bits(), v);
    }

    #[test]
    fn vec_u32_round_trip(v: Vec<u32>) { assert_round_trip(&v); }

    #[test]
    fn nested_round_trip(v: Vec<(u16, Option<String>)>) { assert_round_trip(&v); }

    #[test]
    fn tuple_round_trip(v: (u8, i64, bool, Vec<u8>)) { assert_round_trip(&v); }

    #[test]
    fn string_round_trip(v: String) { assert_round_trip(&v); }

    /// Decoding arbitrary bytes must never panic — it either produces a
    /// value or a typed error.
    #[test]
    fn garbage_never_panics(bytes: Vec<u8>) {
        let _ = from_bytes::<Vec<u64>>(&bytes);
        let _ = from_bytes::<String>(&bytes);
        let _ = from_bytes::<(u32, Option<Vec<u16>>)>(&bytes);
        let _ = from_bytes::<bool>(&bytes);
    }

    /// Concatenated values decode in sequence through one reader.
    #[test]
    fn concatenation(a: u32, b: Vec<u8>, c: (bool, i16)) {
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        c.encode(&mut buf);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(u32::decode(&mut r).unwrap(), a);
        prop_assert_eq!(Vec::<u8>::decode(&mut r).unwrap(), b);
        prop_assert_eq!(<(bool, i16)>::decode(&mut r).unwrap(), c);
        prop_assert!(r.is_empty());
    }
}
