//! `Serial` implementations for composite types: tuples, `Option`, `Vec`,
//! boxed slices, `String`, fixed arrays and `Box`.

use crate::{DecodeError, Reader, Serial};

macro_rules! impl_serial_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serial),+> Serial for ($($name,)+) {
            #[inline]
            fn encoded_len(&self) -> usize {
                0 $(+ self.$idx.encoded_len())+
            }

            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }

            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_serial_tuple!(A: 0);
impl_serial_tuple!(A: 0, B: 1);
impl_serial_tuple!(A: 0, B: 1, C: 2);
impl_serial_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_serial_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_serial_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<T: Serial> Serial for Option<T> {
    #[inline]
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Serial::encoded_len)
    }

    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::InvalidTag { type_name: "Option", tag }),
        }
    }
}

impl<T: Serial> Serial for Vec<T> {
    fn encoded_len(&self) -> usize {
        8 + self.iter().map(Serial::encoded_len).sum::<usize>()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(r)?;
        // Guard against corrupted length prefixes allocating huge vectors:
        // every non-zero-sized element consumes at least one byte.
        let min_elem_bytes = usize::from(std::mem::size_of::<T>() > 0);
        r.check_len(len, min_elem_bytes)?;
        let mut out = Vec::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Serial> Serial for Box<[T]> {
    fn encoded_len(&self) -> usize {
        8 + self.iter().map(Serial::encoded_len).sum::<usize>()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self.iter() {
            item.encode(buf);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Vec::<T>::decode(r)?.into_boxed_slice())
    }
}

impl<T: Serial> Serial for Box<T> {
    #[inline]
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }

    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl Serial for String {
    fn encoded_len(&self) -> usize {
        8 + self.len()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = usize::decode(r)?;
        r.check_len(len, 1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::InvalidValue { type_name: "String" })
    }
}

impl<T: Serial, const N: usize> Serial for [T; N] {
    fn encoded_len(&self) -> usize {
        self.iter().map(Serial::encoded_len).sum()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Decode into a Vec first; N is small in practice (point coords etc.)
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        out.try_into().map_err(|_| DecodeError::InvalidValue { type_name: "[T; N]" })
    }
}

#[cfg(test)]
mod tests {
    use crate::{from_bytes, to_bytes, Serial};

    #[test]
    fn tuple_round_trip() {
        let v = (1u8, 2u32, -3i64, true);
        let b = to_bytes(&v);
        assert_eq!(b.len(), 1 + 4 + 8 + 1);
        assert_eq!(from_bytes::<(u8, u32, i64, bool)>(&b).unwrap(), v);
    }

    #[test]
    fn option_round_trip() {
        for v in [None, Some(42u16)] {
            let b = to_bytes(&v);
            assert_eq!(from_bytes::<Option<u16>>(&b).unwrap(), v);
        }
    }

    #[test]
    fn vec_round_trip_and_len() {
        let v: Vec<u32> = (0..100).collect();
        let b = to_bytes(&v);
        assert_eq!(b.len(), v.encoded_len());
        assert_eq!(from_bytes::<Vec<u32>>(&b).unwrap(), v);
    }

    #[test]
    fn nested_vec() {
        let v = vec![vec![1u8, 2], vec![], vec![3]];
        let b = to_bytes(&v);
        assert_eq!(from_bytes::<Vec<Vec<u8>>>(&b).unwrap(), v);
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_without_allocation() {
        // Claim 2^60 elements with a 1-byte payload.
        let mut b = to_bytes(&(1u64 << 60));
        b.push(7);
        assert!(from_bytes::<Vec<u64>>(&b).is_err());
    }

    #[test]
    fn string_round_trip() {
        for s in ["", "hello", "κόσμε", "💾"] {
            let v = s.to_string();
            let b = to_bytes(&v);
            assert_eq!(from_bytes::<String>(&b).unwrap(), v);
        }
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut b = to_bytes(&2u64);
        b.extend_from_slice(&[0xFF, 0xFE]);
        assert!(from_bytes::<String>(&b).is_err());
    }

    #[test]
    fn array_round_trip() {
        let v = [1.5f64, -2.5, 0.0];
        let b = to_bytes(&v);
        assert_eq!(b.len(), 24);
        assert_eq!(from_bytes::<[f64; 3]>(&b).unwrap(), v);
    }

    #[test]
    fn boxed_values() {
        let v = Box::new(77u64);
        let b = to_bytes(&v);
        assert_eq!(from_bytes::<Box<u64>>(&b).unwrap(), v);
        let s: Box<[u16]> = vec![1, 2, 3].into_boxed_slice();
        let b = to_bytes(&s);
        assert_eq!(from_bytes::<Box<[u16]>>(&b).unwrap(), s);
    }
}
