//! # em-serial
//!
//! A small, dependency-free byte codec used by the external-memory (EM)
//! simulation to persist virtual-processor *contexts* and *messages* on
//! simulated disks.
//!
//! The EM simulation of Dehne, Dittrich and Hutchinson stores each virtual
//! processor's context padded to a fixed size `μ` and cuts message streams
//! into disk blocks of exactly `B` bytes. That requires a codec with
//! *exact, stable* encoded sizes — which is why this crate exists instead of
//! a general-purpose serialization framework: every type knows its encoded
//! length up front (`Serial::encoded_len`), encoding appends to a caller
//! provided buffer without intermediate allocation, and decoding consumes a
//! cursor so that multiple values can be packed back to back in one block.
//!
//! ## Example
//!
//! ```
//! use em_serial::{Serial, Reader, to_bytes, from_bytes};
//!
//! let value: (u32, Vec<u16>) = (7, vec![1, 2, 3]);
//! let bytes = to_bytes(&value);
//! assert_eq!(bytes.len(), value.encoded_len());
//! let back: (u32, Vec<u16>) = from_bytes(&bytes).unwrap();
//! assert_eq!(back, value);
//! ```

#![warn(missing_docs)]

mod composite;
mod error;
mod primitives;
mod reader;

#[macro_use]
mod macros;

pub use error::DecodeError;
pub use reader::Reader;

/// A value that can be encoded into a flat byte stream and decoded back.
///
/// Implementations must satisfy the round-trip law: for any value `v`,
/// `decode(encode(v)) == v`, and `encode(v).len() == v.encoded_len()`.
/// The encoding must be *self-delimiting* when read through a [`Reader`]
/// (i.e. `decode` consumes exactly `encoded_len` bytes), so values can be
/// concatenated.
pub trait Serial: Sized {
    /// Exact number of bytes [`Serial::encode`] will append.
    fn encoded_len(&self) -> usize;

    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode one value from the reader, consuming exactly the bytes that
    /// `encode` produced.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encode a single value into a fresh byte vector.
pub fn to_bytes<T: Serial>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(value.encoded_len());
    value.encode(&mut buf);
    debug_assert_eq!(buf.len(), value.encoded_len(), "encoded_len mismatch");
    buf
}

/// Encode a single value into a caller-provided buffer, reusing its
/// allocation.
///
/// The buffer is cleared first, so after the call it holds exactly the
/// same bytes [`to_bytes`] would return — but hot paths that encode a
/// value per virtual processor per superstep can recycle one buffer
/// instead of allocating a fresh `Vec` each time.
pub fn to_bytes_into<T: Serial>(value: &T, buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(value.encoded_len());
    value.encode(buf);
    debug_assert_eq!(buf.len(), value.encoded_len(), "encoded_len mismatch");
}

/// Decode a single value from a byte slice, requiring that the whole slice
/// is consumed.
pub fn from_bytes<T: Serial>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::TrailingBytes { remaining: r.remaining() });
    }
    Ok(v)
}

/// Decode a single value from the front of a byte slice, ignoring trailing
/// bytes (useful for values padded to a fixed region size).
pub fn from_bytes_prefix<T: Serial>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    T::decode(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_helpers() {
        let v = 0xDEAD_BEEF_u64;
        let b = to_bytes(&v);
        assert_eq!(b.len(), 8);
        assert_eq!(from_bytes::<u64>(&b).unwrap(), v);
    }

    #[test]
    fn to_bytes_into_reuses_and_matches() {
        let mut buf = vec![0xFFu8; 64];
        let v: (u32, Vec<u16>) = (7, vec![1, 2, 3]);
        to_bytes_into(&v, &mut buf);
        assert_eq!(buf, to_bytes(&v));
        // A second encode into the same buffer overwrites, not appends.
        let w: (u32, Vec<u16>) = (9, vec![4]);
        to_bytes_into(&w, &mut buf);
        assert_eq!(buf, to_bytes(&w));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = to_bytes(&1u32);
        b.push(0);
        assert!(matches!(from_bytes::<u32>(&b), Err(DecodeError::TrailingBytes { remaining: 1 })));
        // ...but accepted by the prefix variant.
        assert_eq!(from_bytes_prefix::<u32>(&b).unwrap(), 1);
    }
}
