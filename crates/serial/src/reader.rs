//! Cursor over a byte slice used by decoders.

use crate::DecodeError;

/// A consuming cursor over a byte slice.
///
/// Decoders pull bytes from the front; the reader tracks how much input
/// remains so that concatenated values can be decoded in sequence.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over the whole slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when all input has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Number of bytes consumed so far.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consume exactly `n` bytes and return them.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof { needed: n, available: self.remaining() });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume a fixed-size array of `N` bytes.
    #[inline]
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Consume one byte.
    #[inline]
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        let s = self.take(1)?;
        Ok(s[0])
    }

    /// Validate that a declared element count is plausible given the
    /// remaining input (each element needs at least one byte unless the
    /// element type is zero-sized; zero-sized elements are bounded
    /// separately by the caller).
    #[inline]
    pub fn check_len(&self, declared: usize, min_elem_bytes: usize) -> Result<(), DecodeError> {
        let needed = declared.saturating_mul(min_elem_bytes);
        if min_elem_bytes > 0 && needed > self.remaining() {
            return Err(DecodeError::LengthOverflow { declared, available: self.remaining() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_and_position() {
        let data = [1u8, 2, 3, 4];
        let mut r = Reader::new(&data);
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.take_array::<2>().unwrap(), [3, 4]);
        assert!(r.is_empty());
        assert!(r.take(1).is_err());
    }

    #[test]
    fn check_len_guards_bogus_prefixes() {
        let data = [0u8; 4];
        let r = Reader::new(&data);
        assert!(r.check_len(usize::MAX, 8).is_err());
        assert!(r.check_len(4, 1).is_ok());
        assert!(r.check_len(5, 1).is_err());
        // zero-sized elements are never bounded by input length here
        assert!(r.check_len(usize::MAX, 0).is_ok());
    }
}
