//! Macros for deriving `Serial` on user structs and fieldless enums.

/// Implement [`crate::Serial`] for a struct with named fields, field by
/// field in declaration order.
///
/// ```
/// use em_serial::{impl_serial_struct, to_bytes, from_bytes};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Node { id: u64, next: u64, rank: i64 }
/// impl_serial_struct!(Node { id, next, rank });
///
/// let n = Node { id: 1, next: 2, rank: -1 };
/// let b = to_bytes(&n);
/// assert_eq!(from_bytes::<Node>(&b).unwrap(), n);
/// ```
#[macro_export]
macro_rules! impl_serial_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serial for $name {
            fn encoded_len(&self) -> usize {
                0 $(+ $crate::Serial::encoded_len(&self.$field))+
            }

            fn encode(&self, buf: &mut Vec<u8>) {
                $($crate::Serial::encode(&self.$field, buf);)+
            }

            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::DecodeError> {
                Ok($name {
                    $($field: $crate::Serial::decode(r)?,)+
                })
            }
        }
    };
}

/// Implement [`crate::Serial`] for a fieldless enum as a single tag byte.
///
/// ```
/// use em_serial::{impl_serial_enum, to_bytes, from_bytes};
///
/// #[derive(Debug, Clone, Copy, PartialEq)]
/// enum Phase { Fetch, Compute, Write }
/// impl_serial_enum!(Phase { Fetch = 0, Compute = 1, Write = 2 });
///
/// let b = to_bytes(&Phase::Compute);
/// assert_eq!(b, vec![1]);
/// assert_eq!(from_bytes::<Phase>(&b).unwrap(), Phase::Compute);
/// ```
#[macro_export]
macro_rules! impl_serial_enum {
    ($name:ident { $($variant:ident = $tag:literal),+ $(,)? }) => {
        impl $crate::Serial for $name {
            fn encoded_len(&self) -> usize {
                1
            }

            fn encode(&self, buf: &mut Vec<u8>) {
                let tag: u8 = match self {
                    $($name::$variant => $tag,)+
                };
                buf.push(tag);
            }

            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::DecodeError> {
                match r.take_u8()? {
                    $($tag => Ok($name::$variant),)+
                    tag => Err($crate::DecodeError::InvalidTag {
                        type_name: stringify!($name),
                        tag,
                    }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{from_bytes, to_bytes, Serial};

    #[derive(Debug, Clone, PartialEq)]
    struct Record {
        key: u64,
        payload: Vec<u8>,
        tag: Option<u32>,
    }
    impl_serial_struct!(Record { key, payload, tag });

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Green,
        Blue,
    }
    impl_serial_enum!(Color { Red = 0, Green = 1, Blue = 2 });

    #[test]
    fn struct_round_trip() {
        let r = Record { key: 42, payload: vec![1, 2, 3], tag: Some(9) };
        let b = to_bytes(&r);
        assert_eq!(b.len(), r.encoded_len());
        assert_eq!(from_bytes::<Record>(&b).unwrap(), r);
    }

    #[test]
    fn enum_round_trip_and_bad_tag() {
        for c in [Color::Red, Color::Green, Color::Blue] {
            assert_eq!(from_bytes::<Color>(&to_bytes(&c)).unwrap(), c);
        }
        assert!(from_bytes::<Color>(&[3]).is_err());
    }
}

/// Implement [`crate::Serial`] for a struct with named fields and type
/// parameters (each parameter is bounded by `Serial`).
///
/// ```
/// use em_serial::{impl_serial_struct_generic, to_bytes, from_bytes};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Pair<A, B> { left: A, right: Vec<B> }
/// impl_serial_struct_generic!(Pair<A, B> { left, right });
///
/// let p = Pair { left: 1u32, right: vec![2u16, 3] };
/// let b = to_bytes(&p);
/// assert_eq!(from_bytes::<Pair<u32, u16>>(&b).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_serial_struct_generic {
    ($name:ident<$($gen:ident),+> { $($field:ident),+ $(,)? }) => {
        impl<$($gen: $crate::Serial),+> $crate::Serial for $name<$($gen),+> {
            fn encoded_len(&self) -> usize {
                0 $(+ $crate::Serial::encoded_len(&self.$field))+
            }

            fn encode(&self, buf: &mut Vec<u8>) {
                $($crate::Serial::encode(&self.$field, buf);)+
            }

            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::DecodeError> {
                Ok($name {
                    $($field: $crate::Serial::decode(r)?,)+
                })
            }
        }
    };
}
