//! `Serial` implementations for primitive types.
//!
//! All multi-byte integers use little-endian fixed-width encodings: the EM
//! simulation pads contexts to a fixed size `μ`, so fixed widths (rather
//! than varints) keep `encoded_len` independent of the value and make block
//! layout arithmetic exact.

use crate::{DecodeError, Reader, Serial};

macro_rules! impl_serial_int {
    ($($ty:ty),*) => {
        $(
            impl Serial for $ty {
                #[inline]
                fn encoded_len(&self) -> usize {
                    std::mem::size_of::<$ty>()
                }

                #[inline]
                fn encode(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }

                #[inline]
                fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                    Ok(<$ty>::from_le_bytes(r.take_array()?))
                }
            }
        )*
    };
}

impl_serial_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Serial for usize {
    #[inline]
    fn encoded_len(&self) -> usize {
        8
    }

    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        // Always 8 bytes for cross-platform stability of on-disk layouts.
        buf.extend_from_slice(&(*self as u64).to_le_bytes());
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = u64::from_le_bytes(r.take_array()?);
        usize::try_from(v).map_err(|_| DecodeError::InvalidValue { type_name: "usize" })
    }
}

impl Serial for isize {
    #[inline]
    fn encoded_len(&self) -> usize {
        8
    }

    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(*self as i64).to_le_bytes());
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let v = i64::from_le_bytes(r.take_array()?);
        isize::try_from(v).map_err(|_| DecodeError::InvalidValue { type_name: "isize" })
    }
}

impl Serial for bool {
    #[inline]
    fn encoded_len(&self) -> usize {
        1
    }

    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }

    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::InvalidTag { type_name: "bool", tag }),
        }
    }
}

impl Serial for () {
    #[inline]
    fn encoded_len(&self) -> usize {
        0
    }

    #[inline]
    fn encode(&self, _buf: &mut Vec<u8>) {}

    #[inline]
    fn decode(_r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{from_bytes, to_bytes};

    macro_rules! rt {
        ($v:expr, $ty:ty) => {{
            let v: $ty = $v;
            let b = to_bytes(&v);
            assert_eq!(b.len(), std::mem::size_of::<$ty>().max(1).min(b.len().max(1)));
            assert_eq!(from_bytes::<$ty>(&b).unwrap(), v);
        }};
    }

    #[test]
    fn integer_round_trips() {
        rt!(0, u8);
        rt!(255, u8);
        rt!(u16::MAX, u16);
        rt!(u32::MAX, u32);
        rt!(u64::MAX, u64);
        rt!(u128::MAX, u128);
        rt!(i8::MIN, i8);
        rt!(i16::MIN, i16);
        rt!(i32::MIN, i32);
        rt!(i64::MIN, i64);
        rt!(i128::MIN, i128);
    }

    #[test]
    fn float_round_trips() {
        for v in [0.0f64, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, f64::INFINITY] {
            let b = to_bytes(&v);
            assert_eq!(from_bytes::<f64>(&b).unwrap().to_bits(), v.to_bits());
        }
        let nan = f32::NAN;
        let b = to_bytes(&nan);
        assert!(from_bytes::<f32>(&b).unwrap().is_nan());
    }

    #[test]
    fn usize_is_eight_bytes_and_checked() {
        let b = to_bytes(&usize::MAX);
        assert_eq!(b.len(), 8);
        assert_eq!(from_bytes::<usize>(&b).unwrap(), usize::MAX);
    }

    #[test]
    fn bool_rejects_bad_tag() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<bool>(&[1]).unwrap());
    }

    #[test]
    fn unit_is_zero_bytes() {
        assert!(to_bytes(&()).is_empty());
        from_bytes::<()>(&[]).unwrap();
    }
}
