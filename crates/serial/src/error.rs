//! Decode-side error type.

use std::fmt;

/// Errors produced while decoding a [`crate::Serial`] value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The reader ran out of bytes.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// A discriminant byte had no corresponding variant.
    InvalidTag {
        /// Human-readable name of the type being decoded.
        type_name: &'static str,
        /// Offending tag value.
        tag: u8,
    },
    /// A length prefix was implausibly large for the remaining input.
    LengthOverflow {
        /// Declared length.
        declared: usize,
        /// Bytes remaining in the reader.
        available: usize,
    },
    /// The decoded bytes were not valid for the target type (e.g. UTF-8).
    InvalidValue {
        /// Human-readable name of the type being decoded.
        type_name: &'static str,
    },
    /// `from_bytes` was asked to consume a whole slice but bytes remained.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, available } => {
                write!(f, "unexpected end of input: needed {needed} bytes, had {available}")
            }
            DecodeError::InvalidTag { type_name, tag } => {
                write!(f, "invalid tag {tag} while decoding {type_name}")
            }
            DecodeError::LengthOverflow { declared, available } => {
                write!(f, "declared length {declared} exceeds remaining input {available}")
            }
            DecodeError::InvalidValue { type_name } => {
                write!(f, "decoded bytes are not a valid {type_name}")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoding")
            }
        }
    }
}

impl std::error::Error for DecodeError {}
