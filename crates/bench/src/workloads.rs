//! Seeded workload generators for the experiments (the paper's problems
//! take synthetic inputs; all generators are deterministic per seed).

use em_algos::geometry::rectangles::Rect;
use em_algos::geometry::{Point2, Point3};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Uniform random `u64` records.
pub fn random_u64(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

/// A uniform random permutation of `0..n`.
pub fn random_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    perm
}

/// Random points in a disc of radius `r` (hull size O(n^{1/3}) expected).
pub fn random_points_disc(n: usize, r: i64, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let x = rng.gen_range(-r..=r);
        let y = rng.gen_range(-r..=r);
        if x * x + y * y <= r * r {
            out.push(Point2::new(x, y));
        }
    }
    out
}

/// Random 3D points with pairwise-distinct x (shuffled grid xs).
pub fn random_points_3d(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs: Vec<i64> = (0..n as i64).collect();
    xs.shuffle(&mut rng);
    xs.into_iter()
        .map(|x| {
            Point3::new(
                x,
                rng.gen_range(-1_000_000..1_000_000),
                rng.gen_range(-1_000_000..1_000_000),
            )
        })
        .collect()
}

/// Random weighted 2D points.
pub fn random_weighted_points(n: usize, seed: u64) -> Vec<(Point2, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                Point2::new(
                    rng.gen_range(-1_000_000..1_000_000),
                    rng.gen_range(-1_000_000..1_000_000),
                ),
                rng.gen_range(1..100),
            )
        })
        .collect()
}

/// Random horizontal segments with mean length `len`.
pub fn random_segments(n: usize, len: i64, seed: u64) -> Vec<(i64, i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x1 = rng.gen_range(-1_000_000..1_000_000);
            (x1, x1 + rng.gen_range(1..2 * len), rng.gen_range(-100_000..100_000))
        })
        .collect()
}

/// Random rectangles with mean side `side`.
pub fn random_rects(n: usize, side: i64, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x1 = rng.gen_range(-1_000_000..1_000_000);
            let y1 = rng.gen_range(-1_000_000..1_000_000);
            Rect::new(x1, x1 + rng.gen_range(1..2 * side), y1, y1 + rng.gen_range(1..2 * side))
        })
        .collect()
}

/// Random attachment tree on `n` vertices.
pub fn random_tree(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..n as u64).map(|i| (rng.gen_range(0..i), i)).collect()
}

/// Random multigraph G(n, m).
pub fn random_graph(n: usize, m: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
        .filter(|&(a, b)| a != b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(random_u64(10, 1), random_u64(10, 1));
        assert_ne!(random_u64(10, 1), random_u64(10, 2));
        assert_eq!(random_perm(10, 3), random_perm(10, 3));
        assert_eq!(random_tree(10, 4), random_tree(10, 4));
    }

    #[test]
    fn disc_points_are_inside() {
        for p in random_points_disc(100, 50, 5) {
            assert!(p.x * p.x + p.y * p.y <= 2500);
        }
    }

    #[test]
    fn distinct_xs_in_3d() {
        let pts = random_points_3d(200, 6);
        let mut xs: Vec<i64> = pts.iter().map(|p| p.x).collect();
        xs.sort_unstable();
        xs.dedup();
        assert_eq!(xs.len(), 200);
    }
}
