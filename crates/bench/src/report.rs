//! Table rendering and machine-readable result output.

use serde::Serialize;

/// One experiment row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Experiment / problem id (e.g. "T1-A-sort").
    pub id: String,
    /// Variant label (e.g. "seq-EM baseline", "sim p=4 D=4").
    pub variant: String,
    /// Problem size.
    pub n: usize,
    /// Measured parallel I/O operations.
    pub io_ops: u64,
    /// Paper-predicted operations (complexity expression evaluated).
    pub predicted: f64,
    /// λ (0 for non-simulated baselines).
    pub lambda: usize,
    /// Disk utilization.
    pub utilization: f64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Free-form notes (speedup factors etc.).
    pub note: String,
}

/// Print rows as an aligned text table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<14} {:<26} {:>9} {:>10} {:>12} {:>5} {:>6} {:>9}  note",
        "id", "variant", "n", "io_ops", "predicted", "λ", "util", "wall_ms"
    );
    for r in rows {
        println!(
            "{:<14} {:<26} {:>9} {:>10} {:>12.0} {:>5} {:>6.2} {:>9.1}  {}",
            r.id, r.variant, r.n, r.io_ops, r.predicted, r.lambda, r.utilization, r.wall_ms, r.note
        );
    }
}

/// Emit rows as JSON lines (consumed when updating EXPERIMENTS.md).
pub fn print_json(rows: &[Row]) {
    for r in rows {
        println!("{}", serde_json::to_string(r).expect("row serializes"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize() {
        let r = Row {
            id: "T1-A-sort".into(),
            variant: "baseline".into(),
            n: 1000,
            io_ops: 42,
            predicted: 40.0,
            lambda: 0,
            utilization: 0.95,
            wall_ms: 1.5,
            note: String::new(),
        };
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("T1-A-sort"));
    }
}
