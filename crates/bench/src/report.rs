//! Table rendering and machine-readable result output.

use em_core::{CostReport, PhaseWall};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// One experiment row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Experiment / problem id (e.g. "T1-A-sort").
    pub id: String,
    /// Variant label (e.g. "seq-EM baseline", "sim p=4 D=4").
    pub variant: String,
    /// Problem size.
    pub n: usize,
    /// Measured parallel I/O operations.
    pub io_ops: u64,
    /// Paper-predicted operations (complexity expression evaluated).
    pub predicted: f64,
    /// λ (0 for non-simulated baselines).
    pub lambda: usize,
    /// Disk utilization.
    pub utilization: f64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Reads absorbed by the write-back block cache
    /// ([`em_disk::IoStats::cache_hit_blocks`]; 0 when the cache is off).
    pub cache_hit_blocks: u64,
    /// Writes buffered by the cache until the barrier flush
    /// ([`em_disk::IoStats::cache_absorbed_writes`]; 0 when off).
    pub cache_absorbed_writes: u64,
    /// Free-form notes (speedup factors etc.).
    pub note: String,
}

/// Print rows as an aligned text table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<14} {:<26} {:>9} {:>10} {:>12} {:>5} {:>6} {:>9}  note",
        "id", "variant", "n", "io_ops", "predicted", "λ", "util", "wall_ms"
    );
    for r in rows {
        println!(
            "{:<14} {:<26} {:>9} {:>10} {:>12.0} {:>5} {:>6.2} {:>9.1}  {}",
            r.id, r.variant, r.n, r.io_ops, r.predicted, r.lambda, r.utilization, r.wall_ms, r.note
        );
    }
}

/// Emit rows as JSON lines (consumed when updating EXPERIMENTS.md).
pub fn print_json(rows: &[Row]) {
    for r in rows {
        println!("{}", serde_json::to_string(r).expect("row serializes"));
    }
}

/// One run's per-phase wall-clock breakdown, in milliseconds.
///
/// Every wall-clock field name ends in `wall_ms` so determinism diffs can
/// strip the whole family with one pattern (see the `determinism` job in
/// `.github/workflows/ci.yml`); everything else in the record is expected
/// to be bit-identical across `IoMode`/`Pipeline`/`ComputeMode` knobs and
/// across identically-seeded reruns.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseWallRow {
    /// Label for the run the breakdown belongs to (experiment + variant).
    pub variant: String,
    /// Counted parallel I/O operations of the same run (primary signal,
    /// deterministic — kept here so the JSON is self-describing).
    pub io_ops: u64,
    /// Fetching Phase (context + message-region reads).
    pub fetch_wall_ms: f64,
    /// Computation Phase (decode, superstep, re-encode).
    pub compute_wall_ms: f64,
    /// Writing Phase (message scatter + context write-back).
    pub write_wall_ms: f64,
    /// `SimulateRouting` reorganization.
    pub reorganize_wall_ms: f64,
    /// Superstep-boundary durability barrier.
    pub sync_wall_ms: f64,
    /// Sum of the five phases.
    pub total_wall_ms: f64,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl PhaseWallRow {
    /// Build a row from a single labelled [`PhaseWall`].
    pub fn from_wall(variant: impl Into<String>, io_ops: u64, wall: &PhaseWall) -> Self {
        PhaseWallRow {
            variant: variant.into(),
            io_ops,
            fetch_wall_ms: ms(wall.fetch),
            compute_wall_ms: ms(wall.compute),
            write_wall_ms: ms(wall.write),
            reorganize_wall_ms: ms(wall.reorganize),
            sync_wall_ms: ms(wall.sync),
            total_wall_ms: ms(wall.total()),
        }
    }

    /// Build a row from pipeline stages, summing the per-stage timers.
    pub fn from_stages(variant: impl Into<String>, stages: &[CostReport]) -> Self {
        let mut wall = PhaseWall::default();
        for s in stages {
            wall.fetch += s.phase_wall.fetch;
            wall.compute += s.phase_wall.compute;
            wall.write += s.phase_wall.write;
            wall.reorganize += s.phase_wall.reorganize;
            wall.sync += s.phase_wall.sync;
        }
        let io_ops = stages.iter().map(|s| s.io.parallel_ops).sum();
        PhaseWallRow::from_wall(variant, io_ops, &wall)
    }
}

/// Minimal JSON string escaping for the scalar header fields (the record
/// arrays go through serde). Kept local so the writer has no requirements
/// beyond what the vendored/offline serde surface guarantees.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render one array of serializable records with each element on its own
/// line, so line-oriented tooling (the CI determinism sed, grep) can
/// process the file record-at-a-time while it stays a single valid JSON
/// document.
fn json_array_lines<T: Serialize>(items: &[T], indent: &str) -> String {
    let body: Vec<String> = items
        .iter()
        .map(|i| format!("{indent}  {}", serde_json::to_string(i).expect("record serializes")))
        .collect();
    if body.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n{indent}]", body.join(",\n"))
    }
}

/// Write `results/BENCH_<name>.json` (creating `results/` as needed) and
/// return the path. Called unconditionally by the bench binaries — also
/// under `--smoke` — so CI exercises the same writer as a full run.
///
/// The document is `{bench, seed, smoke, config, rows, phase_walls}` with
/// one record per line inside the two arrays; all wall-clock fields end
/// in `wall_ms` and everything else is deterministic for a fixed seed.
pub fn write_bench_json(
    name: &str,
    seed: u64,
    smoke: bool,
    config: &str,
    rows: &[Row],
    phase_walls: &[PhaseWallRow],
) -> std::io::Result<PathBuf> {
    write_bench_json_under(Path::new("results"), name, seed, smoke, config, rows, phase_walls)
}

/// [`write_bench_json`] with an explicit output directory (testing hook).
#[allow(clippy::too_many_arguments)]
pub fn write_bench_json_under(
    dir: &Path,
    name: &str,
    seed: u64,
    smoke: bool,
    config: &str,
    rows: &[Row],
    phase_walls: &[PhaseWallRow],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let payload = format!(
        "{{\n  \"bench\": {},\n  \"seed\": {seed},\n  \"smoke\": {smoke},\n  \
         \"config\": {},\n  \"rows\": {},\n  \"phase_walls\": {}\n}}\n",
        json_escape(name),
        json_escape(config),
        json_array_lines(rows, "  "),
        json_array_lines(phase_walls, "  "),
    );
    std::fs::write(&path, payload)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize() {
        let r = Row {
            id: "T1-A-sort".into(),
            variant: "baseline".into(),
            n: 1000,
            io_ops: 42,
            predicted: 40.0,
            lambda: 0,
            utilization: 0.95,
            wall_ms: 1.5,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: String::new(),
        };
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("T1-A-sort"));
        assert!(
            s.contains("\"cache_hit_blocks\":0") && s.contains("\"cache_absorbed_writes\":0"),
            "cache tallies must be emitted even when zero: {s}"
        );
    }

    #[test]
    fn bench_json_round_trips_and_strips_walls() {
        let rows = vec![Row {
            id: "F-compute".into(),
            variant: "threaded n=2".into(),
            n: 64,
            io_ops: 42,
            predicted: 0.0,
            lambda: 4,
            utilization: 0.9,
            wall_ms: 12.5,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: String::new(),
        }];
        let wall = PhaseWall {
            fetch: std::time::Duration::from_millis(3),
            compute: std::time::Duration::from_millis(40),
            write: std::time::Duration::from_millis(5),
            reorganize: std::time::Duration::from_millis(2),
            sync: std::time::Duration::from_millis(1),
        };
        let walls = vec![PhaseWallRow::from_wall("F-compute threaded n=2", 42, &wall)];
        let dir = std::env::temp_dir().join(format!("em-bench-report-{}", std::process::id()));
        let path =
            write_bench_json_under(&dir, "test", 7, true, "M=64KiB D=4", &rows, &walls).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_test.json");
        assert!(text.contains("\"bench\": \"test\""));
        assert!(text.contains("\"seed\": 7"));
        assert!(text.contains("\"smoke\": true"));
        assert!(text.contains("\"io_ops\":42"));
        assert!(text.contains("compute_wall_ms"));
        // Record-per-line layout: each row and each phase-wall record sits
        // on its own line, so the CI determinism sed can strip the
        // wall-clock family (every such field ends in `wall_ms`) without a
        // JSON parser. Every time-dependent value in this record lives in
        // a `…wall_ms` field; nothing else here may vary across reruns.
        let row_lines =
            text.lines().filter(|l| l.trim_start().starts_with('{') && l.contains("\"id\""));
        assert_eq!(row_lines.count(), 1);
        let wall_line = text
            .lines()
            .find(|l| l.contains("compute_wall_ms"))
            .expect("phase-wall record present");
        assert!(wall_line.contains("fetch_wall_ms"));
        assert!(wall_line.contains("total_wall_ms"));
    }
}
