//! chaos — seeded crash/fault/multi-tenant soak harness.
//!
//! Exercises the durability contract end to end, **asserting in process**:
//!
//! 1. *Kill/resume matrix* — a state-dependent multi-superstep workload is
//!    killed at every barrier (after the manifest committed, mid-manifest
//!    write, and mid-superstep) on both simulators and both pipeline
//!    modes, then resumed; final states, the communication ledger and the
//!    counted parallel I/O must be bit-identical to the uninterrupted run.
//! 2. *Kill × fault-plan matrix* — the same sweep with injected transient
//!    disk faults absorbed by the retry policy, proving fault-schedule
//!    op counters survive a crash (a resumed run replays the *same*
//!    faults at the *same* absolute operations).
//! 3. *Tenant chaos* — concurrent service tenants where one dies an
//!    unrecoverable death (quarantined, resources reclaimed, lease goes
//!    sticky), some limp through transient faults under a retry policy,
//!    and one is refused by a zero deadline; every surviving tenant's
//!    metered ledger must be bit-identical to a solo run on a private
//!    array.
//!
//! Usage: `chaos [--smoke] [--json] [--seed S]`
//!
//! * `--smoke` — CI-sized sweep (fewer seeds and kill points), same code
//!   paths as the full run.
//! * `--json` — print a deterministic JSON transcript to stdout (scenario
//!   fingerprints, then the tenant ledger; byte-identical across
//!   identically-seeded runs — the CI soak lane diffs exactly this). The
//!   human summary moves to stderr.
//!
//! Every invocation also writes `results/BENCH_chaos.json`.

use em_bench::report::{write_bench_json, PhaseWallRow, Row};
use em_bench::workloads::random_u64;
use em_bsp::{BspProgram, BspStarParams, Executor, Mailbox, Step};
use em_core::{CostReport, EmError, EmMachine, KillPoint, ParEmSimulator, SeqEmSimulator};
use em_disk::{FaultPlan, Pipeline, RetryPolicy};
use em_service::{
    JobPolicy, JobSpec, ServiceConfig, ServiceError, SimService, SoloRunner, TenantOutcome,
    TenantRecord,
};
use std::path::{Path, PathBuf};

/// Supersteps of the kill-sweep workload; barriers `0..SUPERSTEPS` are
/// the kill targets.
const SUPERSTEPS: usize = 5;

/// State-dependent diffusion: every superstep folds the incoming
/// messages into the state and sends state-derived messages, so the
/// final states encode the whole history — any resume divergence shows.
struct Diffuse;
impl BspProgram for Diffuse {
    type State = u64;
    type Msg = u64;
    fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
        let v = mb.nprocs();
        for e in mb.take_incoming() {
            *state = state.wrapping_add(e.msg);
        }
        if step + 1 < SUPERSTEPS {
            mb.send((mb.pid() + 1) % v, *state + step as u64);
            mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
            Step::Continue
        } else {
            Step::Halt
        }
    }
    fn max_state_bytes(&self) -> usize {
        124
    }
    fn max_comm_bytes(&self) -> usize {
        2 * 24
    }
}

fn fold(h: u64, x: u64) -> u64 {
    h.rotate_left(7) ^ x
}

fn states_fp(states: &[u64]) -> u64 {
    states.iter().fold(0, |h, &x| fold(h, x))
}

fn ledger_fp(ledger: &em_bsp::CommLedger) -> u64 {
    ledger.steps.iter().fold(0, |h, s| fold(fold(fold(h, s.h_bytes), s.bytes), s.msgs))
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("em-sim-chaos-{}-{tag}", std::process::id()))
}

/// One cell of the kill/resume matrices: a deterministic fingerprint of
/// the uninterrupted run plus the number of kill points resumed
/// bit-identically against it.
struct Cell {
    scenario: String,
    io_ops: u64,
    lambda: usize,
    state_fp: u64,
    ledger_fp: u64,
    kills: usize,
}

impl Cell {
    fn json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"io_ops\":{},\"lambda\":{},\"state_fp\":\"{:016x}\",\"ledger_fp\":\"{:016x}\",\"kills_resumed\":{}}}",
            self.scenario, self.io_ops, self.lambda, self.state_fp, self.ledger_fp, self.kills
        )
    }

    fn row(&self) -> Row {
        Row {
            id: self.scenario.clone(),
            variant: "kill/resume sweep".into(),
            n: self.kills,
            io_ops: self.io_ops,
            predicted: 0.0,
            lambda: self.lambda,
            utilization: 0.0,
            wall_ms: 0.0,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "state {:016x} ledger {:016x}; {} kill points resumed bit-identical",
                self.state_fp, self.ledger_fp, self.kills
            ),
        }
    }
}

fn kill_points(smoke: bool) -> Vec<KillPoint> {
    let barriers: Vec<usize> =
        if smoke { vec![0, 2, SUPERSTEPS - 1] } else { (0..SUPERSTEPS).collect() };
    barriers
        .into_iter()
        .flat_map(|b| {
            [KillPoint::AtBarrier(b), KillPoint::MidSuperstep(b), KillPoint::MidManifest(b)]
        })
        .collect()
}

fn init_states(v: usize, seed: u64) -> Vec<u64> {
    random_u64(v, seed)
}

#[allow(clippy::too_many_arguments)]
fn assert_resume_matches(
    scenario: &str,
    kill: KillPoint,
    a: &em_bsp::RunResult<u64>,
    ra: &CostReport,
    b: &em_bsp::RunResult<u64>,
    rb: &CostReport,
) {
    assert_eq!(a.states, b.states, "{scenario}/{kill:?}: resumed states diverge");
    assert_eq!(a.ledger, b.ledger, "{scenario}/{kill:?}: resumed ledger diverges");
    assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops, "{scenario}/{kill:?}: parallel_ops diverge");
    assert_eq!(ra.io.per_disk_reads, rb.io.per_disk_reads, "{scenario}/{kill:?}: reads diverge");
    assert_eq!(ra.io.per_disk_writes, rb.io.per_disk_writes, "{scenario}/{kill:?}: writes diverge");
    assert_eq!(ra.phases, rb.phases, "{scenario}/{kill:?}: phase I/O diverges");
    assert_eq!(
        ra.real_comm_bytes, rb.real_comm_bytes,
        "{scenario}/{kill:?}: real h-relation bytes diverge"
    );
}

fn seq_cell(
    scenario: &str,
    pipeline: Pipeline,
    seed: u64,
    faults: Option<FaultPlan>,
    kills: &[KillPoint],
) -> Cell {
    let v = 16;
    let machine = EmMachine::uniprocessor(256, 2, 64, 1);
    let base = scratch(scenario);
    let make = |dir: &Path| {
        let mut sim = SeqEmSimulator::new(machine)
            .with_seed(seed)
            .with_pipeline(pipeline)
            .with_file_backend(dir)
            .with_checkpointing(true);
        if let Some(plan) = &faults {
            sim = sim.with_fault_plan(plan.clone()).with_retry(RetryPolicy::new(4));
        }
        sim
    };
    let (a, ra) = make(&base.join("ref")).run(&Diffuse, init_states(v, seed)).unwrap();
    for &kill in kills {
        let dir = base.join(format!("{kill:?}"));
        let sim = make(&dir);
        let err =
            sim.clone().with_kill_point(kill).run(&Diffuse, init_states(v, seed)).unwrap_err();
        assert!(
            matches!(err, EmError::Killed { .. }),
            "{scenario}/{kill:?}: expected kill, got {err}"
        );
        let (b, rb) = sim.resume(&Diffuse).unwrap();
        assert_resume_matches(scenario, kill, &a, &ra, &b, &rb);
    }
    std::fs::remove_dir_all(&base).ok();
    Cell {
        scenario: scenario.into(),
        io_ops: ra.io.parallel_ops,
        lambda: ra.lambda,
        state_fp: states_fp(&a.states),
        ledger_fp: ledger_fp(&a.ledger),
        kills: kills.len(),
    }
}

fn par_cell(
    scenario: &str,
    pipeline: Pipeline,
    seed: u64,
    faults: Option<FaultPlan>,
    kills: &[KillPoint],
) -> Cell {
    let v = 24;
    let p = 3;
    let machine = EmMachine {
        p,
        m_bytes: 256,
        d: 2,
        b_bytes: 64,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 64, l: 1.0 },
    };
    let base = scratch(scenario);
    let make = |dir: &Path| {
        let mut sim = ParEmSimulator::new(machine)
            .with_seed(seed)
            .with_pipeline(pipeline)
            .with_file_backend(dir)
            .with_checkpointing(true);
        if let Some(plan) = &faults {
            sim = sim.with_fault_plan(plan.clone()).with_retry(RetryPolicy::new(4));
        }
        sim
    };
    let (a, ra) = make(&base.join("ref")).run(&Diffuse, init_states(v, seed)).unwrap();
    for &kill in kills {
        let dir = base.join(format!("{kill:?}"));
        let sim = make(&dir);
        let err =
            sim.clone().with_kill_point(kill).run(&Diffuse, init_states(v, seed)).unwrap_err();
        assert!(
            matches!(err, EmError::Killed { .. }),
            "{scenario}/{kill:?}: expected kill, got {err}"
        );
        let (b, rb) = sim.resume(&Diffuse).unwrap();
        assert_resume_matches(scenario, kill, &a, &ra, &b, &rb);
    }
    std::fs::remove_dir_all(&base).ok();
    Cell {
        scenario: scenario.into(),
        io_ops: ra.io.parallel_ops,
        lambda: ra.lambda,
        state_fp: states_fp(&a.states),
        ledger_fp: ledger_fp(&a.ledger),
        kills: kills.len(),
    }
}

// ---------------------------------------------------------------------------
// Tenant chaos
// ---------------------------------------------------------------------------

const M: usize = 1 << 17;
const D: usize = 2;
const B: usize = 1024;
const TRACKS_PER_TENANT: usize = 1024;
const MU: usize = 1 << 16;
const GAMMA: usize = 1 << 16;

fn service_machine() -> EmMachine {
    EmMachine::uniprocessor(M, D, B, 1)
}

/// A healthy tenant job: CGM sample sort of a seeded input.
fn run_sort<E: Executor>(exec: &E, n: usize, v: usize, seed: u64) -> u64 {
    let out = em_algos::sort::cgm_sort(exec, v, random_u64(n, seed)).expect("sort tenant failed");
    out.iter().fold(0u64, |h, &x| fold(h, x))
}

/// Unwraps the [`ServiceError`] inside a failed tenant algorithm run.
fn service_err(err: em_algos::AlgoError) -> Box<ServiceError> {
    match err {
        em_algos::AlgoError::Exec(e) => {
            e.downcast::<ServiceError>().expect("service error expected")
        }
        other => panic!("expected an executor error, got {other}"),
    }
}

fn assert_record_matches_solo(name: &str, record: &TenantRecord, solo: &[CostReport], fp: u32) {
    assert!(
        matches!(record.outcome, TenantOutcome::Completed),
        "{name}: expected a completed record"
    );
    assert_eq!(record.stages.len(), solo.len(), "{name}: stage count differs from solo run");
    for (i, (svc, ref_)) in record.stages.iter().zip(solo).enumerate() {
        assert_eq!(svc.io, ref_.io, "{name} stage {i}: counted IoStats differ from solo");
        assert_eq!(svc.lambda, ref_.lambda, "{name} stage {i}: lambda differs");
    }
    assert_eq!(record.state_fingerprint, fp, "{name}: state fingerprint differs from solo");
}

/// Runs the tenant-chaos scenario and returns the service's deterministic
/// ledger JSON plus summary counts `(completed, quarantined)`.
fn tenant_chaos(master_seed: u64, smoke: bool) -> (String, Vec<TenantRecord>, usize, usize) {
    let healthy = if smoke { 3 } else { 8 };
    let flaky = if smoke { 2 } else { 4 };
    let tenants = healthy + flaky + 2; // + death tenant + refill tenant
    let service = SimService::new(
        ServiceConfig::new(D, B, tenants * TRACKS_PER_TENANT + 64, tenants * (MU * 64 + GAMMA))
            .with_compute_slots(tenants),
    );
    let n = if smoke { 192 } else { 768 };
    let v = 8;

    std::thread::scope(|scope| {
        // Healthy tenants: no faults, generous policy.
        for i in 0..healthy {
            let service = &service;
            scope.spawn(move || {
                let seed = master_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let name = format!("healthy-{i:02}");
                let solo = SoloRunner::new(SeqEmSimulator::new(service_machine()).with_seed(seed));
                let solo_out = run_sort(&solo, n, v, seed);
                let (solo_stages, solo_fp) = solo.finish();
                let spec = JobSpec::new(&name, seed, service_machine(), v)
                    .with_budgets(MU, GAMMA)
                    .with_tracks(TRACKS_PER_TENANT)
                    .with_policy(JobPolicy::default().with_max_retries(2));
                let lease = service.admit(spec).expect("healthy tenant refused");
                let out = run_sort(&lease, n, v, seed);
                assert_eq!(out, solo_out, "{name}: output differs from solo");
                let record = lease.complete();
                assert_record_matches_solo(&name, &record, &solo_stages, solo_fp);
            });
        }
        // Flaky tenants: one-shot transient faults absorbed by the retry
        // policy; the surviving attempt must meter identically to solo.
        for i in 0..flaky {
            let service = &service;
            scope.spawn(move || {
                let seed = master_seed ^ 0xF1A4 ^ (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let name = format!("flaky-{i:02}");
                let solo = SoloRunner::new(SeqEmSimulator::new(service_machine()).with_seed(seed));
                let solo_out = run_sort(&solo, n, v, seed);
                let (solo_stages, solo_fp) = solo.finish();
                let spec = JobSpec::new(&name, seed, service_machine(), v)
                    .with_budgets(MU, GAMMA)
                    .with_tracks(TRACKS_PER_TENANT)
                    .with_fault_plan(
                        FaultPlan::none()
                            .with_transient(0, 3 + i as u64)
                            .with_transient(1, 9 + i as u64),
                    )
                    .with_policy(
                        JobPolicy::default().with_max_retries(3).with_backoff_base_micros(10),
                    );
                let lease = service.admit(spec).expect("flaky tenant refused");
                let out = run_sort(&lease, n, v, seed);
                assert_eq!(out, solo_out, "{name}: output differs from solo");
                let record = lease.complete();
                assert_record_matches_solo(&name, &record, &solo_stages, solo_fp);
            });
        }
        // Death tenant: unrecoverable fault mid-run -> quarantined, lease
        // sticky, resources reclaimed.
        let service_ref = &service;
        scope.spawn(move || {
            let seed = master_seed ^ 0xDEAD;
            let spec = JobSpec::new("death-00", seed, service_machine(), v)
                .with_budgets(MU, GAMMA)
                .with_tracks(TRACKS_PER_TENANT)
                .with_fault_plan(FaultPlan::none().with_worker_death(0, 5))
                .with_policy(JobPolicy::default().with_max_retries(3));
            let lease = service_ref.admit(spec).expect("death tenant refused admission");
            let err = service_err(
                em_algos::sort::cgm_sort(&lease, v, random_u64(n, seed))
                    .expect_err("death tenant must not complete"),
            );
            assert!(matches!(*err, ServiceError::Quarantined { .. }), "got {err}");
            // Sticky: the lease refuses further work without touching disks.
            let err = service_err(
                em_algos::sort::cgm_sort(&lease, v, random_u64(16, seed))
                    .expect_err("quarantined lease must stay refused"),
            );
            assert!(matches!(*err, ServiceError::Quarantined { .. }));
            let record = lease.complete();
            assert!(matches!(record.outcome, TenantOutcome::Quarantined { .. }));

            // Reclamation: a refill tenant fits into the freed tracks and
            // meters identically to solo.
            let refill_seed = master_seed ^ 0x4EF1;
            let solo =
                SoloRunner::new(SeqEmSimulator::new(service_machine()).with_seed(refill_seed));
            let solo_out = run_sort(&solo, n, v, refill_seed);
            let (solo_stages, solo_fp) = solo.finish();
            let spec = JobSpec::new("refill-00", refill_seed, service_machine(), v)
                .with_budgets(MU, GAMMA)
                .with_tracks(TRACKS_PER_TENANT);
            let lease = service_ref.admit(spec).expect("refill tenant refused after reclamation");
            let out = run_sort(&lease, n, v, refill_seed);
            assert_eq!(out, solo_out, "refill-00: output differs from solo");
            let record = lease.complete();
            assert_record_matches_solo("refill-00", &record, &solo_stages, solo_fp);
        });
    });

    // Zero deadline: deterministically refused before any attempt runs.
    let spec = JobSpec::new("deadline-00", master_seed ^ 0xD11E, service_machine(), v)
        .with_budgets(MU, GAMMA)
        .with_tracks(TRACKS_PER_TENANT)
        .with_policy(JobPolicy::default().with_deadline_micros(0));
    let lease = service.admit(spec).expect("deadline tenant refused admission");
    let err = service_err(
        em_algos::sort::cgm_sort(&lease, v, random_u64(64, master_seed))
            .expect_err("zero deadline must refuse to start"),
    );
    assert!(matches!(*err, ServiceError::DeadlineExceeded { .. }), "got {err}");
    drop(lease);

    let report = service.report();
    let records = report.records().to_vec();
    let completed =
        records.iter().filter(|r| matches!(r.outcome, TenantOutcome::Completed)).count();
    let quarantined =
        records.iter().filter(|r| matches!(r.outcome, TenantOutcome::Quarantined { .. })).count();
    assert_eq!(quarantined, 1, "exactly the death tenant must be quarantined");
    (report.deterministic_json(), records, completed, quarantined)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let opt = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.parse::<u64>().unwrap_or_else(|_| panic!("{flag} needs a numeric argument")))
    };
    let smoke = has("--smoke");
    let json = has("--json");
    let master_seed = opt("--seed").unwrap_or(0xC4A05);

    let kills = kill_points(smoke);
    let seeds: Vec<u64> = (0..if smoke { 2 } else { 5 })
        .map(|i| master_seed ^ (i as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
        .collect();
    let transient_plan =
        || FaultPlan::none().with_transient(0, 7).with_transient(1, 13).with_transient(0, 29);

    let mut cells: Vec<Cell> = Vec::new();
    for &seed in &seeds {
        cells.push(seq_cell(&format!("seq-off-s{seed:x}"), Pipeline::Off, seed, None, &kills));
        cells.push(seq_cell(
            &format!("seq-stream2-s{seed:x}"),
            Pipeline::Stream(2),
            seed,
            None,
            &kills,
        ));
        cells.push(par_cell(&format!("par-off-s{seed:x}"), Pipeline::Off, seed, None, &kills));
        cells.push(par_cell(
            &format!("par-stream2-s{seed:x}"),
            Pipeline::Stream(2),
            seed,
            None,
            &kills,
        ));
        cells.push(seq_cell(
            &format!("seq-faults-s{seed:x}"),
            Pipeline::Off,
            seed,
            Some(transient_plan()),
            &kills,
        ));
        cells.push(par_cell(
            &format!("par-faults-s{seed:x}"),
            Pipeline::Off,
            seed,
            Some(transient_plan()),
            &kills,
        ));
    }
    let total_kills: usize = cells.iter().map(|c| c.kills).sum();

    let (ledger_json, records, completed, quarantined) = tenant_chaos(master_seed, smoke);

    let mut rows: Vec<Row> = cells.iter().map(Cell::row).collect();
    rows.extend(records.iter().map(|r| Row {
        id: r.name.clone(),
        variant: "chaos tenant".into(),
        n: r.v,
        io_ops: r.total_io_ops(),
        predicted: 0.0,
        lambda: r.stages.iter().map(|s| s.lambda).sum(),
        utilization: 0.0,
        wall_ms: r.stages.iter().map(|s| s.wall.as_secs_f64() * 1e3).sum(),
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("outcome {:?}", r.outcome),
    }));
    let walls: Vec<PhaseWallRow> =
        records.iter().map(|r| PhaseWallRow::from_stages(r.name.clone(), &r.stages)).collect();
    let config = format!(
        "kill sweep: {} cells x {} kill points ({} resumes); tenants D={D} B={B} tracks={TRACKS_PER_TENANT}",
        cells.len(),
        kills.len(),
        total_kills,
    );
    let path = write_bench_json("chaos", master_seed, smoke, &config, &rows, &walls)
        .expect("writing results/BENCH_chaos.json");

    let summary = format!(
        "chaos: {} kill/resume scenarios x {} kill points all bit-identical after resume; \
         {completed} tenants completed bit-identical to solo, {quarantined} quarantined -> {}",
        cells.len(),
        kills.len(),
        path.display()
    );
    if json {
        println!("{{\"kill_resume\":[");
        for (i, c) in cells.iter().enumerate() {
            let sep = if i + 1 == cells.len() { "" } else { "," };
            println!("{}{sep}", c.json());
        }
        println!("],\"tenants\":");
        print!("{ledger_json}");
        println!("}}");
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
}
