//! Regenerate Table 1: for each problem, the classical sequential EM
//! baseline vs the parallel EM algorithm obtained by the paper's
//! simulation, as counted parallel I/O operations on identical disk
//! substrates.
//!
//! Usage: `table1 [problem] [--json]` where problem ∈ {sort, permute,
//! transpose, hull, maxima3d, dominance, next-element, envelope,
//! rectangles, list-ranking, euler-tour, cc, all}. Sizes can be scaled
//! with `--scale <f>` (default 1.0); `--smoke` is shorthand for a tiny
//! CI-sized scale that keeps every problem and assert on the same code
//! path but finishes in seconds in a debug build.
//!
//! Besides the text table (or `--json` lines on stdout), every invocation
//! — including `--smoke` — writes `results/BENCH_table1.json` with the
//! seed, machine config, all rows, and per-phase wall-clock breakdowns of
//! the simulated runs.

use em_bench::measure::{machine, measure_par, measure_seq};
use em_bench::report::{print_json, print_table, write_bench_json, PhaseWallRow, Row};
use em_bench::workloads::*;
use em_core::theory;
use em_disk::{DiskArray, DiskConfig};

// Benchmark machine shape (per processor).
const M: usize = 1 << 18; // 256 KiB memory
const D: usize = 4; // disks
const B: usize = 2048; // bytes per block
const V: usize = 64; // virtual processors
const P: usize = 4; // real processors for the parallel runs
const SEED: u64 = 0xE1;

fn baseline_disks() -> DiskArray {
    DiskArray::new_memory(DiskConfig::new(D, B).unwrap())
}

fn push_sim_rows(
    rows: &mut Vec<Row>,
    walls: &mut Vec<PhaseWallRow>,
    id: &str,
    n: usize,
    n_bytes: u64,
    seq: em_bench::EmRunCost,
    par: em_bench::EmRunCost,
) {
    let pred1 = theory::corollary1_io_time(seq.lambda as u64, 1, n_bytes, 1, D as u64, B as u64);
    rows.push(Row {
        id: id.into(),
        variant: format!("sim EM-CGM p=1 D={D}"),
        n,
        io_ops: seq.io_ops,
        predicted: pred1,
        lambda: seq.lambda,
        utilization: seq.utilization,
        wall_ms: seq.wall_ms,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("balance≤{:.2}", seq.worst_balance),
    });
    let predp =
        theory::corollary1_io_time(par.lambda as u64, 1, n_bytes, P as u64, D as u64, B as u64);
    rows.push(Row {
        id: id.into(),
        variant: format!("sim EM-CGM p={P} D={D}"),
        n,
        io_ops: par.io_ops / P as u64,
        predicted: predp,
        lambda: par.lambda,
        utilization: par.utilization,
        wall_ms: par.wall_ms,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!(
            "per-proc ops; speedup {:.1}x vs p=1",
            seq.io_ops as f64 / (par.io_ops as f64 / P as f64)
        ),
    });
    walls.push(PhaseWallRow::from_stages(format!("{id} p=1 D={D}"), &seq.stages));
    walls.push(PhaseWallRow::from_stages(format!("{id} p={P} D={D}"), &par.stages));
}

fn sort_rows(scale: f64, walls: &mut Vec<PhaseWallRow>) -> Vec<Row> {
    let n = (200_000_f64 * scale) as usize;
    let items = random_u64(n, SEED);
    let mut rows = Vec::new();

    // Baseline: Aggarwal–Vitter external merge sort.
    let mut disks = baseline_disks();
    let (out, stats) =
        em_baselines::ExternalSort { m_bytes: M }.run(&mut disks, items.clone()).unwrap();
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
    rows.push(Row {
        id: "T1-A-sort".into(),
        variant: "seq EM merge sort (AV)".into(),
        n,
        io_ops: stats.io.parallel_ops,
        predicted: theory::av_sort_io_prediction(n as u64, 8, M as u64, D as u64, B as u64),
        lambda: 0,
        utilization: stats.io.utilization(),
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("runs={} passes={}", stats.runs, stats.passes),
    });

    // Simulated CGM sample sort, p = 1 and p = P.
    let reference = em_algos::sort::seq_sort(items.clone());
    let (got, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::sort::cgm_sort(rec, V, items.clone()).unwrap()
    });
    assert_eq!(got, reference);
    let (got, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::sort::cgm_sort(rec, V, items.clone()).unwrap()
    });
    assert_eq!(got, reference);
    push_sim_rows(&mut rows, walls, "T1-A-sort", n, (n * 8) as u64, seq, par);
    rows
}

fn permute_rows(scale: f64, walls: &mut Vec<PhaseWallRow>) -> Vec<Row> {
    let n = (150_000_f64 * scale) as usize;
    let items = random_u64(n, SEED + 1);
    let perm = random_perm(n, SEED + 2);
    let mut rows = Vec::new();

    let mut disks = baseline_disks();
    let (_, stats) = em_baselines::external_permute(&mut disks, M, items.clone(), &perm).unwrap();
    rows.push(Row {
        id: "T1-A-perm".into(),
        variant: "seq EM permute (dest sort)".into(),
        n,
        io_ops: stats.io.parallel_ops,
        predicted: theory::av_sort_io_prediction(n as u64, 16, M as u64, D as u64, B as u64),
        lambda: 0,
        utilization: stats.io.utilization(),
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: String::new(),
    });

    let (_, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::permute::cgm_permute(rec, V, items.clone(), &perm).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::permute::cgm_permute(rec, V, items.clone(), &perm).unwrap()
    });
    push_sim_rows(&mut rows, walls, "T1-A-perm", n, (n * 16) as u64, seq, par);
    rows
}

fn transpose_rows(scale: f64, walls: &mut Vec<PhaseWallRow>) -> Vec<Row> {
    let r = (400_f64 * scale.sqrt()) as usize;
    let c = 300;
    let n = r * c;
    let data = random_u64(n, SEED + 3);
    let mut rows = Vec::new();

    let mut disks = baseline_disks();
    let (_, stats) = em_baselines::external_transpose(&mut disks, M, r, c, data.clone()).unwrap();
    rows.push(Row {
        id: "T1-A-trans".into(),
        variant: "seq EM transpose".into(),
        n,
        io_ops: stats.io.parallel_ops,
        predicted: theory::av_sort_io_prediction(n as u64, 16, M as u64, D as u64, B as u64),
        lambda: 0,
        utilization: stats.io.utilization(),
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("{r}x{c}"),
    });

    let (_, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::transpose::cgm_transpose(rec, V, r, c, data.clone()).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::transpose::cgm_transpose(rec, V, r, c, data.clone()).unwrap()
    });
    push_sim_rows(&mut rows, walls, "T1-A-trans", n, (n * 16) as u64, seq, par);
    rows
}

/// Group B rows share shape: no classical baseline implementation is
/// feasible for every geometry problem, so the baseline column reports the
/// paper's formula `(n/B)·log_{M/B}(n/B)` (single-disk classical bound)
/// evaluated, while measured rows come from the simulation.
fn geometry_rows(scale: f64, walls: &mut Vec<PhaseWallRow>) -> Vec<Row> {
    let mut rows = Vec::new();
    let nb = |n: usize, rec: usize| (n * rec) as u64;

    // Convex hull.
    let n = (60_000_f64 * scale) as usize;
    let pts = random_points_disc(n, 1_000_000, SEED + 4);
    // Random-disc inputs have O(n^{1/3}) expected hull size; a 4096-point
    // gather budget keeps μ within the benchmark machine's memory.
    let (hull, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::geometry::hull::cgm_convex_hull_with_budget(rec, V, pts.clone(), 4096).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::geometry::hull::cgm_convex_hull_with_budget(rec, V, pts.clone(), 4096).unwrap()
    });
    rows.push(Row {
        id: "T1-B-hull".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(n as u64, 16, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("hull size {}", hull.len()),
    });
    push_sim_rows(&mut rows, walls, "T1-B-hull", n, nb(n, 16), seq, par);

    // 3D maxima.
    let n = (50_000_f64 * scale) as usize;
    let pts = random_points_3d(n, SEED + 5);
    let (mx, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::geometry::maxima3d::cgm_maxima3d(rec, V, pts.clone()).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::geometry::maxima3d::cgm_maxima3d(rec, V, pts.clone()).unwrap()
    });
    rows.push(Row {
        id: "T1-B-max3d".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(n as u64, 24, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("maxima {}", mx.len()),
    });
    push_sim_rows(&mut rows, walls, "T1-B-max3d", n, nb(n, 24), seq, par);

    // Weighted dominance counting.
    let n = (40_000_f64 * scale) as usize;
    let pts = random_weighted_points(n, SEED + 6);
    let (_, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::geometry::dominance::cgm_dominance_counts(rec, V, &pts).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::geometry::dominance::cgm_dominance_counts(rec, V, &pts).unwrap()
    });
    rows.push(Row {
        id: "T1-B-dom".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(n as u64, 48, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: String::new(),
    });
    push_sim_rows(&mut rows, walls, "T1-B-dom", n, nb(n, 48), seq, par);

    // Batched next-element search.
    let n = (50_000_f64 * scale) as usize;
    let keys: Vec<i64> =
        random_u64(n, SEED + 7).into_iter().map(|x| (x % 2_000_000) as i64 - 1_000_000).collect();
    let queries: Vec<i64> =
        random_u64(n, SEED + 8).into_iter().map(|x| (x % 2_000_000) as i64 - 1_000_000).collect();
    let (_, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::geometry::next_element::cgm_predecessor(rec, V, &keys, &queries).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::geometry::next_element::cgm_predecessor(rec, V, &keys, &queries).unwrap()
    });
    rows.push(Row {
        id: "T1-B-next".into(),
        variant: "classical bound (evaluated)".into(),
        n: 2 * n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(2 * n as u64, 17, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: String::new(),
    });
    push_sim_rows(&mut rows, walls, "T1-B-next", 2 * n, nb(2 * n, 17), seq, par);

    // Lower envelope.
    let n = (30_000_f64 * scale) as usize;
    let segs = random_segments(n, 2_000, SEED + 9);
    // Short segments over a wide domain: few cross any one slab.
    let (_, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::geometry::envelope::cgm_lower_envelope_with_budget(rec, V, &segs, 2048).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::geometry::envelope::cgm_lower_envelope_with_budget(rec, V, &segs, 2048).unwrap()
    });
    rows.push(Row {
        id: "T1-B-env".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(2 * n as u64, 35, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: String::new(),
    });
    push_sim_rows(&mut rows, walls, "T1-B-env", n, nb(2 * n, 35), seq, par);

    // 2D closest pair (the "2D-nearest neighbors" row's core).
    let n = (50_000_f64 * scale) as usize;
    let pts: Vec<em_algos::geometry::Point2> = random_points_disc(n, 1 << 30, SEED + 20);
    let (cp_seq, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::geometry::closest_pair::cgm_closest_pair(rec, V, pts.clone()).unwrap()
    });
    let (cp_par, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::geometry::closest_pair::cgm_closest_pair(rec, V, pts.clone()).unwrap()
    });
    assert_eq!(cp_seq.0, cp_par.0);
    rows.push(Row {
        id: "T1-B-cp".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(n as u64, 16, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("δ² = {}", cp_seq.0),
    });
    push_sim_rows(&mut rows, walls, "T1-B-cp", n, nb(n, 16), seq, par);

    // Multi-directional separability (hull disjointness).
    let n = (40_000_f64 * scale) as usize;
    let a = random_points_disc(n, 900_000, SEED + 21);
    let b: Vec<em_algos::geometry::Point2> = random_points_disc(n, 900_000, SEED + 22)
        .into_iter()
        .map(|p| em_algos::geometry::Point2::new(p.x + 2_000_000, p.y))
        .collect();
    let (sep_seq, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::geometry::separability::cgm_separable_with_budget(
            rec,
            V,
            a.clone(),
            b.clone(),
            4096,
        )
        .unwrap()
    });
    let (sep_par, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::geometry::separability::cgm_separable_with_budget(
            rec,
            V,
            a.clone(),
            b.clone(),
            4096,
        )
        .unwrap()
    });
    assert!(sep_seq && sep_par);
    rows.push(Row {
        id: "T1-B-sep".into(),
        variant: "classical bound (evaluated)".into(),
        n: 2 * n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(2 * n as u64, 16, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: "disjoint clouds: separable".into(),
    });
    push_sim_rows(&mut rows, walls, "T1-B-sep", 2 * n, nb(2 * n, 16), seq, par);

    // Area of union of rectangles.
    let n = (25_000_f64 * scale) as usize;
    let rects = random_rects(n, 3_000, SEED + 10);
    let (area_seq, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::geometry::rectangles::cgm_union_area_with_budget(rec, V, &rects, 2048).unwrap()
    });
    let (area_par, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::geometry::rectangles::cgm_union_area_with_budget(rec, V, &rects, 2048).unwrap()
    });
    assert_eq!(area_seq, area_par);
    rows.push(Row {
        id: "T1-B-rect".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(2 * n as u64, 41, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: String::new(),
    });
    push_sim_rows(&mut rows, walls, "T1-B-rect", n, nb(2 * n, 41), seq, par);
    rows
}

fn graph_rows(scale: f64, walls: &mut Vec<PhaseWallRow>) -> Vec<Row> {
    let mut rows = Vec::new();

    // List ranking: PRAM-simulation baseline vs our simulation.
    let n = (30_000_f64 * scale) as usize;
    let succ = em_algos::graph::list_ranking::random_chain(n, SEED + 11);
    let weights = vec![1u64; n];
    let mut disks = baseline_disks();
    let (pram_ranks, pram_io, steps) =
        em_baselines::pram::pram_list_rank(&mut disks, M, &succ).unwrap();
    rows.push(Row {
        id: "T1-C-lr".into(),
        variant: "PRAM simulation (Chiang)".into(),
        n,
        io_ops: pram_io.parallel_ops,
        predicted: theory::pram_sim_io_prediction(
            steps as u64,
            n as u64,
            32,
            M as u64,
            D as u64,
            B as u64,
        ),
        lambda: steps,
        utilization: pram_io.utilization(),
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("{steps} PRAM steps, 2 sorts each"),
    });
    let (got, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::graph::list_ranking::cgm_list_rank(rec, V, &succ, &weights).unwrap()
    });
    assert_eq!(got, pram_ranks);
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::graph::list_ranking::cgm_list_rank(rec, V, &succ, &weights).unwrap()
    });
    push_sim_rows(&mut rows, walls, "T1-C-lr", n, (n * 16) as u64, seq, par);

    // Euler tour + tree aggregates.
    let n = (15_000_f64 * scale) as usize;
    let edges = random_tree(n, SEED + 12);
    let (_, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::graph::euler::cgm_euler_tree(rec, V, n, &edges, 0).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::graph::euler::cgm_euler_tree(rec, V, n, &edges, 0).unwrap()
    });
    rows.push(Row {
        id: "T1-C-et".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(2 * n as u64, 16, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: String::new(),
    });
    push_sim_rows(&mut rows, walls, "T1-C-et", n, (2 * n * 16) as u64, seq, par);

    // Batched LCA (Euler tour + range-minimum).
    let n = (10_000_f64 * scale) as usize;
    let edges = random_tree(n, SEED + 14);
    let mut qrng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SEED + 15);
    let queries: Vec<(u64, u64)> = (0..n)
        .map(|_| {
            (
                rand::Rng::gen_range(&mut qrng, 0..n as u64),
                rand::Rng::gen_range(&mut qrng, 0..n as u64),
            )
        })
        .collect();
    let (_, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::graph::lca::cgm_batched_lca(rec, V, n, &edges, 0, &queries).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::graph::lca::cgm_batched_lca(rec, V, n, &edges, 0, &queries).unwrap()
    });
    rows.push(Row {
        id: "T1-C-lca".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(3 * n as u64, 16, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("{} queries", queries.len()),
    });
    push_sim_rows(&mut rows, walls, "T1-C-lca", n, (3 * n * 16) as u64, seq, par);

    // Connected components + spanning forest.
    let n = (20_000_f64 * scale) as usize;
    let edges = random_graph(n, 2 * n, SEED + 13);
    let (_, seq) = measure_seq(machine(1, M, D, B), SEED, |rec| {
        em_algos::graph::cc::cgm_connected_components(rec, V, n, &edges).unwrap()
    });
    let (_, par) = measure_par(machine(P, M, D, B), SEED, |rec| {
        em_algos::graph::cc::cgm_connected_components(rec, V, n, &edges).unwrap()
    });
    rows.push(Row {
        id: "T1-C-cc".into(),
        variant: "classical bound (evaluated)".into(),
        n,
        io_ops: 0,
        predicted: theory::av_sort_io_prediction(3 * n as u64, 24, M as u64, 1, B as u64),
        lambda: 0,
        utilization: 0.0,
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!("m={}", edges.len()),
    });
    push_sim_rows(&mut rows, walls, "T1-C-cc", n, (3 * n * 24) as u64, seq, par);
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if smoke {
        0.1
    } else {
        args.iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0)
    };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
        .map(String::as_str)
        .unwrap_or("all");

    let mut rows = Vec::new();
    let mut walls: Vec<PhaseWallRow> = Vec::new();
    if matches!(which, "all" | "sort") {
        rows.extend(sort_rows(scale, &mut walls));
    }
    if matches!(which, "all" | "permute") {
        rows.extend(permute_rows(scale, &mut walls));
    }
    if matches!(which, "all" | "transpose") {
        rows.extend(transpose_rows(scale, &mut walls));
    }
    if matches!(
        which,
        "all"
            | "hull"
            | "maxima3d"
            | "dominance"
            | "next-element"
            | "envelope"
            | "rectangles"
            | "geometry"
    ) {
        rows.extend(geometry_rows(scale, &mut walls));
    }
    if matches!(which, "all" | "list-ranking" | "euler-tour" | "lca" | "cc" | "graph") {
        rows.extend(graph_rows(scale, &mut walls));
    }

    if json {
        print_json(&rows);
    } else {
        print_table(
            &format!("Table 1 regeneration (M={M} B, D={D}, B={B} B, v={V}, scale={scale})"),
            &rows,
        );
        println!(
            "\nShape checks: simulated I/O ≈ λ·c·n/(pDB); parallel rows show per-processor ops;"
        );
        println!("PRAM baseline pays a sort per step; AV sort pays log_{{M/DB}} passes.");
    }
    let config = format!("M={M} B, D={D}, B={B} B, v={V}, p={P}, scale={scale}; which={which}");
    match write_bench_json("table1", SEED, smoke, &config, &rows, &walls) {
        // Stderr so `--json` stdout stays pure JSON lines.
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results/BENCH_table1.json: {e}"),
    }
}
