//! Figure-style parameter sweeps for the paper's claims that have no table
//! of their own.
//!
//! Usage: `figures [experiment] [--json] [--smoke]` with experiment ∈
//! {blocking, disks, procs, balance, fig2, lambda, sibeyn, group-size,
//! det-vs-rand, contraction, obs2, faults, compute, reorg, tune, cache,
//! stream, engine, all}.
//! `--smoke` shrinks every sweep to CI-sized inputs (seconds, debug build)
//! while exercising the same code paths and in-process asserts.
//!
//! Besides the text table (or `--json` lines on stdout), every invocation
//! writes `results/BENCH_figures.json`: seed, config, all rows, and the
//! per-phase wall-clock breakdowns of the `compute` sweep.
//!
//! The `disks` and `procs` sweeps emit both memory-backend rows (counted
//! parallel I/O ops — the primary signal) and file-backend rows whose
//! wall-clock column is the secondary signal: real positional file I/O,
//! serial vs worker-per-drive parallel stripe execution, and — for the
//! "pipelined" rows — double-buffered compound supersteps (see DESIGN.md
//! §3.2.2–§3.2.3 for when each signal is authoritative). Every pipelined
//! row asserts, in process, that its counted [`em_disk::IoStats`] equal
//! the corresponding `Pipeline::Off` row's bit for bit. The `stream`
//! sweep is the N-deep generalization: a `Pipeline::Stream(n)` depth
//! ablation (DESIGN.md §3.2.7) whose every lane asserts output, counted
//! IoStats, per-phase op counts, message ledger *and raw drive bytes*
//! bit-identical to `Pipeline::Off` on both simulators. The `engine`
//! sweep applies the same asserts across stripe engines — worker threads
//! vs io_uring (DESIGN.md §3.2.10) — skipping the uring lanes with a
//! stderr note where the kernel ring is unavailable. The `reorg` sweep
//! ablates the pooled reorganization-phase plan construction and the
//! `tune` sweep the [`em_core::AutoTuner`] resolution paths (DESIGN.md
//! §3.2.11), each asserting bit-identical counted results in process.

use em_bench::measure::{machine, measure_par, measure_par_file, measure_seq, measure_seq_file};
use em_bench::report::{print_json, print_table, write_bench_json, PhaseWallRow, Row};
use em_bench::workloads::*;
use em_core::theory;
use em_core::{
    scatter_messages, simulate_routing, BufferPool, MsgGeometry, OutMsg, Placement, RoutingScratch,
    ScratchState,
};
use em_disk::{DiskArray, DiskConfig, IoMode, IoStats, Pipeline, TrackAllocator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

const SEED: u64 = 0xF16;

/// Set once in `main` when `--smoke` is passed; read by the sweeps.
static SMOKE: AtomicBool = AtomicBool::new(false);

/// Pick `full` normally, `small` under `--smoke`.
fn pick<T>(full: T, small: T) -> T {
    if SMOKE.load(Ordering::Relaxed) {
        small
    } else {
        full
    }
}

/// Per-stage counted I/O of a run — the payload the pipelined rows must
/// reproduce exactly.
fn stage_stats(cost: &em_bench::EmRunCost) -> Vec<IoStats> {
    cost.stages.iter().map(|r| r.io.clone()).collect()
}

/// Scratch directory for one file-backed sweep variant; wiped before and
/// after use so reruns start from empty drive files.
fn sweep_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("em-figures-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// F-blocking: the ×B penalty of unblocked I/O (intro's "factor 10³").
fn fig_blocking() -> Vec<Row> {
    let n = pick(20_000usize, 2_000);
    let items = random_u64(n, SEED);
    let mut rows = Vec::new();
    let mut blocked_at_4096 = 1u64;
    for b in [64usize, 256, 1024, 4096] {
        let mut disks = DiskArray::new_memory(DiskConfig::new(1, b).unwrap());
        let (_, stats) =
            em_baselines::ExternalSort { m_bytes: 4096 }.run(&mut disks, items.clone()).unwrap();
        if b == 4096 {
            blocked_at_4096 = stats.io.parallel_ops.max(1);
        }
        rows.push(Row {
            id: "F-blocking".into(),
            variant: format!("blocked sort B={b}"),
            n,
            io_ops: stats.io.parallel_ops,
            predicted: theory::av_sort_io_prediction(n as u64, 8, 4096, 1, b as u64),
            lambda: 0,
            utilization: stats.io.utilization(),
            wall_ms: 0.0,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!("{} records/block", b / 8),
        });
    }
    // Unblocked comparator: pays per record regardless of B.
    let mut disks = DiskArray::new_memory(DiskConfig::new(1, 4096).unwrap());
    let (_, io) = em_baselines::naive::naive_sort(&mut disks, 4096, items).unwrap();
    rows.push(Row {
        id: "F-blocking".into(),
        variant: "UNBLOCKED sort B=4096".into(),
        n,
        io_ops: io.parallel_ops,
        predicted: theory::naive_unblocked_io_prediction(n as u64)
            * ((n as f64 / 512.0).log2().ceil()),
        lambda: 0,
        utilization: io.utilization(),
        note: format!(
            "×{} vs blocked at same B — the blocking factor",
            io.parallel_ops / blocked_at_4096
        ),
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
    });
    rows
}

/// F-disks: I/O operations vs D — the ×D parallel-disk speedup. The
/// memory rows carry the counted-ops claim; the file rows add the
/// secondary wall-clock signal, comparing serial stripe execution (the
/// pre-engine behaviour: one drive after another, flat in D) against the
/// worker-per-drive parallel engine (wall clock should fall as D grows on
/// a multi-core host).
fn fig_disks() -> Vec<Row> {
    let n = pick(100_000usize, 4_000);
    let items = random_u64(n, SEED + 1);
    let mut rows = Vec::new();
    let mut base = 0u64;
    for &d in pick(&[1usize, 2, 4, 8, 16][..], &[1usize, 2, 4][..]) {
        let m = (1usize << 18).max(d * 2048);
        let (_, cost) = measure_seq(machine(1, m, d, 2048), SEED, |rec| {
            em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
        });
        if d == 1 {
            base = cost.io_ops;
        }
        rows.push(Row {
            id: "F-disks".into(),
            variant: format!("sim sort D={d}"),
            n,
            io_ops: cost.io_ops,
            predicted: base as f64 / d as f64,
            lambda: cost.lambda,
            utilization: cost.utilization,
            wall_ms: cost.wall_ms,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!("speedup {:.2}x vs D=1", base as f64 / cost.io_ops as f64),
        });
        let mut off_stats: Option<Vec<IoStats>> = None;
        for (mode, pl, tag) in [
            (IoMode::Serial, Pipeline::Off, "serial io"),
            (IoMode::Parallel, Pipeline::Off, "parallel io"),
            (IoMode::Parallel, Pipeline::DoubleBuffer, "parallel io, pipelined"),
        ] {
            let dir = sweep_dir(&format!("disks-d{d}-{tag}"));
            let (_, fcost) =
                measure_seq_file(machine(1, m, d, 2048), SEED, &dir, mode, pl, |rec| {
                    em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
                });
            std::fs::remove_dir_all(&dir).ok();
            assert_eq!(
                fcost.io_ops, cost.io_ops,
                "file backend must count the same parallel I/O ops as memory"
            );
            // The pipeline knob must not change what is counted: compare
            // the full per-stage IoStats against the Pipeline::Off run.
            if pl == Pipeline::Off {
                if mode == IoMode::Parallel {
                    off_stats = Some(stage_stats(&fcost));
                }
            } else {
                assert_eq!(
                    Some(stage_stats(&fcost)),
                    off_stats,
                    "pipelined run must count bit-identical IoStats to Pipeline::Off"
                );
            }
            rows.push(Row {
                id: "F-disks".into(),
                variant: format!("file sort D={d} ({tag})"),
                n,
                io_ops: fcost.io_ops,
                predicted: base as f64 / d as f64,
                lambda: fcost.lambda,
                utilization: fcost.utilization,
                wall_ms: fcost.wall_ms,
                cache_hit_blocks: 0,
                cache_absorbed_writes: 0,
                note: if pl == Pipeline::DoubleBuffer {
                    "IoStats asserted identical to the non-pipelined row".into()
                } else {
                    "wall clock is the signal on file rows".into()
                },
            });
        }
    }
    rows
}

/// F-procs: per-processor I/O and wall time vs p (Theorem 1 scaling). The
/// file rows run every processor's disks through the parallel engine
/// (p·D I/O worker threads), adding a durable-write wall-clock column
/// next to the counted per-processor ops.
fn fig_procs() -> Vec<Row> {
    let n = pick(120_000usize, 4_000);
    let items = random_u64(n, SEED + 2);
    let mut rows = Vec::new();
    let mut base = 0u64;
    for &p in pick(&[1usize, 2, 4, 8][..], &[1usize, 2][..]) {
        let (_, cost) = if p == 1 {
            measure_seq(machine(1, 1 << 18, 4, 2048), SEED, |rec| {
                em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
            })
        } else {
            measure_par(machine(p, 1 << 18, 4, 2048), SEED, |rec| {
                em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
            })
        };
        let per_proc = cost.io_ops / p as u64;
        if p == 1 {
            base = per_proc;
        }
        rows.push(Row {
            id: "F-procs".into(),
            variant: format!("sim sort p={p}"),
            n,
            io_ops: per_proc,
            predicted: base as f64 / p as f64,
            lambda: cost.lambda,
            utilization: cost.utilization,
            wall_ms: cost.wall_ms,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "per-proc; speedup {:.2}x; real comm {} KiB",
                base as f64 / per_proc.max(1) as f64,
                cost.real_comm_bytes / 1024
            ),
        });
        let mut off_stats: Option<Vec<IoStats>> = None;
        for (pl, tag) in
            [(Pipeline::Off, "parallel io"), (Pipeline::DoubleBuffer, "parallel io, pipelined")]
        {
            let m = 1usize << 18;
            let dir = sweep_dir(&format!("procs-p{p}-{tag}"));
            let (_, fcost) = if p == 1 {
                measure_seq_file(machine(1, m, 4, 2048), SEED, &dir, IoMode::Parallel, pl, |rec| {
                    em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
                })
            } else {
                measure_par_file(machine(p, m, 4, 2048), SEED, &dir, IoMode::Parallel, pl, |rec| {
                    em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
                })
            };
            std::fs::remove_dir_all(&dir).ok();
            assert_eq!(
                fcost.io_ops, cost.io_ops,
                "file backend must count the same parallel I/O ops as memory"
            );
            // As in `fig_disks`: pipelining must not change the counted
            // per-stage IoStats (summed over processors for p > 1).
            if pl == Pipeline::Off {
                off_stats = Some(stage_stats(&fcost));
            } else {
                assert_eq!(
                    Some(stage_stats(&fcost)),
                    off_stats,
                    "pipelined run must count bit-identical IoStats to Pipeline::Off"
                );
            }
            rows.push(Row {
                id: "F-procs".into(),
                variant: format!("file sort p={p} ({tag})"),
                n,
                io_ops: fcost.io_ops / p as u64,
                predicted: base as f64 / p as f64,
                lambda: fcost.lambda,
                utilization: fcost.utilization,
                wall_ms: fcost.wall_ms,
                cache_hit_blocks: 0,
                cache_absorbed_writes: 0,
                note: if pl == Pipeline::DoubleBuffer {
                    "per-proc; IoStats asserted identical to the non-pipelined row".into()
                } else {
                    "per-proc; wall clock is the signal on file rows".into()
                },
            });
        }
    }
    rows
}

/// F-balance: Lemma 2 — empirical bucket-balance factor vs the tail
/// bound. Blocks are scattered one write-cycle at a time with a fresh
/// random permutation (the paper's scheme); single-block cycles make the
/// placement exactly balls-into-bins, the regime Lemma 2 bounds.
fn fig_balance() -> Vec<Row> {
    let mut rows = Vec::new();
    let d = 8usize;
    let b = 256usize;
    for &r_per_bucket in pick(&[4usize, 16, 64, 256][..], &[4usize, 16][..]) {
        let trials = pick(20u64, 4);
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut alloc = TrackAllocator::new(d);
            let geom = MsgGeometry::allocate(
                &mut alloc,
                d, // v = D groups of k = 1
                1,
                r_per_bucket * (b - 20),
                d,
                b,
            )
            .unwrap();
            let mut disks = DiskArray::new_memory(DiskConfig::new(d, b).unwrap());
            let mut scratch = ScratchState::new(&geom);
            let mut rng = StdRng::seed_from_u64(SEED + t);
            // One block per scatter call: each write cycle holds a single
            // block and lands on a uniformly random disk.
            for i in 0..r_per_bucket {
                for g in 0..d {
                    let msgs = vec![OutMsg {
                        dst: g as u32,
                        src: 0,
                        seq: i as u32,
                        payload: vec![0u8; b - 20 - 16],
                    }];
                    scatter_messages(
                        &mut disks,
                        &mut alloc,
                        &geom,
                        &mut scratch,
                        0,
                        msgs,
                        &mut rng,
                        Placement::Random,
                    )
                    .unwrap();
                }
            }
            let f = scratch.balance_factor();
            worst = worst.max(f);
            sum += f;
        }
        rows.push(Row {
            id: "F-balance".into(),
            variant: format!("R={r_per_bucket}/bucket trials={trials}"),
            n: r_per_bucket * d,
            io_ops: 0,
            predicted: theory::lemma2_tail_bound(worst, r_per_bucket as f64, d as f64),
            lambda: 0,
            utilization: 0.0,
            wall_ms: 0.0,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "worst l={worst:.2} mean l={:.2}; Lemma2 Pr[X≥l·R/D]≤{:.1e}",
                sum / trials as f64,
                theory::lemma2_tail_bound(worst, r_per_bucket as f64, d as f64)
            ),
        });
    }
    rows
}

/// F-lambda: I/O is linear in λ (Corollary 1) — synthetic multi-round
/// diffusion with a tunable round count.
fn fig_lambda() -> Vec<Row> {
    use em_bsp::{BspProgram, Executor, Mailbox, Step};
    use em_serial::impl_serial_struct;

    #[derive(Debug, Clone, PartialEq)]
    struct DiffState {
        data: Vec<u64>,
    }
    impl_serial_struct!(DiffState { data });

    struct Diffuse {
        rounds: usize,
        chunk: usize,
    }
    impl BspProgram for Diffuse {
        type State = DiffState;
        type Msg = Vec<u64>;
        fn superstep(
            &self,
            step: usize,
            mb: &mut Mailbox<Vec<u64>>,
            state: &mut DiffState,
        ) -> Step {
            for e in mb.take_incoming() {
                for (a, b) in state.data.iter_mut().zip(e.msg) {
                    *a = a.wrapping_add(b);
                }
            }
            if step < self.rounds {
                let v = mb.nprocs();
                mb.send((mb.pid() + 1) % v, state.data.clone());
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            16 + 8 * (self.chunk + 2)
        }
        fn max_comm_bytes(&self) -> usize {
            2 * (16 + 16 + 8 * (self.chunk + 2)) + 64
        }
    }

    let v = 32usize;
    let chunk = pick(2048usize, 256);
    let mut rows = Vec::new();
    let mut per_round = 0.0;
    for &rounds in pick(&[2usize, 4, 8, 16][..], &[2usize, 4][..]) {
        let states: Vec<DiffState> =
            (0..v).map(|i| DiffState { data: vec![i as u64; chunk] }).collect();
        let prog = Diffuse { rounds, chunk };
        let (_, cost) = measure_seq(machine(1, 1 << 16, 4, 2048), SEED, |rec| {
            rec.execute(&prog, states.clone()).unwrap().states
        });
        if rounds == 2 {
            per_round = cost.io_ops as f64 / cost.lambda as f64;
        }
        rows.push(Row {
            id: "F-lambda".into(),
            variant: format!("diffusion rounds={rounds}"),
            n: v * chunk,
            io_ops: cost.io_ops,
            predicted: per_round * cost.lambda as f64,
            lambda: cost.lambda,
            utilization: cost.utilization,
            wall_ms: cost.wall_ms,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!("{:.0} ops/superstep", cost.io_ops as f64 / cost.lambda as f64),
        });
    }
    rows
}

/// F-sibeyn: the paper's simulation vs the Sibeyn–Kaufmann-style runner
/// (single disk, v×v matrix, no blocking adaptation) on the same program.
fn fig_sibeyn() -> Vec<Row> {
    use em_bsp::{BspProgram, Executor, Mailbox, Step};

    struct AllToAll {
        v: usize,
    }
    impl BspProgram for AllToAll {
        type State = u64;
        type Msg = Vec<u64>;
        fn superstep(&self, step: usize, mb: &mut Mailbox<Vec<u64>>, state: &mut u64) -> Step {
            match step {
                0 => {
                    for dst in 0..mb.nprocs() {
                        mb.send(dst, vec![mb.pid() as u64; 64]);
                    }
                    Step::Continue
                }
                _ => {
                    *state = mb.take_incoming().iter().flat_map(|e| &e.msg).sum();
                    Step::Halt
                }
            }
        }
        fn max_state_bytes(&self) -> usize {
            8
        }
        fn max_comm_bytes(&self) -> usize {
            self.v * (16 + 16 + 8 * 64) + 64
        }
    }

    let mut rows = Vec::new();
    for &v in pick(&[16usize, 32, 64][..], &[16usize][..]) {
        let prog = AllToAll { v };
        let states = vec![0u64; v];

        let runner = em_baselines::SibeynRunner { block_bytes: 2048, ..Default::default() };
        let (res_a, io_a) = runner.run(&prog, states.clone()).unwrap();

        let (res_b, cost) = measure_seq(machine(1, 1 << 16, 4, 2048), SEED, |rec| {
            rec.execute(&prog, states.clone()).unwrap()
        });
        assert_eq!(res_a.states, res_b.states);

        rows.push(Row {
            id: "F-sibeyn".into(),
            variant: format!("Sibeyn-style v={v} (1 disk)"),
            n: v,
            io_ops: io_a.parallel_ops,
            predicted: theory::sibeyn_io_prediction(v as u64, 8, 2048, 2),
            lambda: 2,
            utilization: io_a.utilization(),
            wall_ms: 0.0,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: "v×v matrix, no blocking adaptation".into(),
        });
        rows.push(Row {
            id: "F-sibeyn".into(),
            variant: format!("paper sim v={v} (D=4)"),
            n: v,
            io_ops: cost.io_ops,
            predicted: 0.0,
            lambda: cost.lambda,
            utilization: cost.utilization,
            wall_ms: cost.wall_ms,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!("ratio {:.1}x", io_a.parallel_ops as f64 / cost.io_ops.max(1) as f64),
        });
    }
    rows
}

/// F-koptim: group-size ablation — k = ⌊M/μ⌋ shrinks with M; cost stays
/// near-flat until the slackness conditions break.
fn fig_group_size() -> Vec<Row> {
    let n = pick(100_000usize, 4_000);
    let items = random_u64(n, SEED + 3);
    let mut rows = Vec::new();
    for &m_kb in pick(&[64usize, 128, 256, 512, 1024][..], &[64usize, 128][..]) {
        let m = m_kb * 1024;
        let (_, cost) = measure_seq(machine(1, m, 4, 2048), SEED, |rec| {
            em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
        });
        let r = &cost.stages[0];
        rows.push(Row {
            id: "F-koptim".into(),
            variant: format!("sort M={m_kb}KiB"),
            n,
            io_ops: cost.io_ops,
            predicted: 0.0,
            lambda: cost.lambda,
            utilization: cost.utilization,
            wall_ms: cost.wall_ms,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!("k={} groups={}", r.k, r.num_groups),
        });
    }
    rows
}

/// F-detrand: random permutation placement (the paper's randomized scheme)
/// vs deterministic round-robin (the CGM deterministic variant).
fn fig_det_vs_rand() -> Vec<Row> {
    let n = pick(100_000usize, 4_000);
    let items = random_u64(n, SEED + 4);
    let mut rows = Vec::new();
    for (name, placement) in
        [("random π", Placement::Random), ("round-robin", Placement::RoundRobin)]
    {
        let rec = em_core::Recording::new(
            em_core::SeqEmSimulator::new(machine(1, 1 << 18, 4, 2048))
                .with_seed(SEED)
                .with_placement(placement),
        );
        let t0 = std::time::Instant::now();
        let out = em_algos::sort::cgm_sort(&rec, 64, items.clone()).unwrap();
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let reports = rec.take_reports();
        let io_ops: u64 = reports.iter().map(|r| r.io.parallel_ops).sum();
        let balance = reports.iter().map(|r| r.worst_balance()).fold(1.0f64, f64::max);
        rows.push(Row {
            id: "F-detrand".into(),
            variant: format!("sort placement={name}"),
            n,
            io_ops,
            predicted: 0.0,
            lambda: reports.iter().map(|r| r.lambda).sum(),
            utilization: 0.0,
            wall_ms: wall,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!("worst balance {balance:.2}"),
        });
    }
    rows
}

/// F-contraction: pointer jumping vs independent-set contraction under
/// the simulation — the "geometrically decreasing size" effect of §2.1
/// made measurable: contraction's per-superstep traffic shrinks, so its
/// total I/O grows like n/DB instead of (n/DB)·log n.
fn fig_contraction() -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in pick(&[8_000usize, 16_000, 32_000][..], &[2_000usize][..]) {
        let succ = em_algos::graph::list_ranking::random_chain(n, SEED + 5);
        let w = vec![1u64; n];
        let (a, jump) = measure_seq(machine(1, 1 << 18, 4, 2048), SEED, |rec| {
            em_algos::graph::list_ranking::cgm_list_rank(rec, 64, &succ, &w).unwrap()
        });
        let (b, contract) = measure_seq(machine(1, 1 << 18, 4, 2048), SEED, |rec| {
            em_algos::graph::contraction::cgm_list_rank_contraction(rec, 64, &succ, &w).unwrap()
        });
        assert_eq!(a, b);
        rows.push(Row {
            id: "F-contract".into(),
            variant: format!("pointer jumping n={n}"),
            n,
            io_ops: jump.io_ops,
            predicted: 0.0,
            lambda: jump.lambda,
            utilization: jump.utilization,
            wall_ms: jump.wall_ms,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!("msg bytes {}", jump.msg_bytes),
        });
        rows.push(Row {
            id: "F-contract".into(),
            variant: format!("IS contraction n={n}"),
            n,
            io_ops: contract.io_ops,
            predicted: 0.0,
            lambda: contract.lambda,
            utilization: contract.utilization,
            wall_ms: contract.wall_ms,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "msg bytes {} ({:.1}x less traffic, {:.2}x ops)",
                contract.msg_bytes,
                jump.msg_bytes as f64 / contract.msg_bytes.max(1) as f64,
                jump.io_ops as f64 / contract.io_ops.max(1) as f64,
            ),
        });
    }
    rows
}

/// F-obs2: Observation 2 — c-optimality preservation. With the sample
/// sort charging its computation (n·log n model units), the ratios
/// T_comm/(T(A)/p) and T_io/(T(A)/p) must shrink as n grows at a fixed
/// machine (the o(1) conditions), while T_comp/(T(A)/p) stays near a
/// constant c.
fn fig_obs2() -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in pick(&[50_000usize, 100_000, 200_000, 400_000][..], &[5_000usize, 10_000][..]) {
        let items = random_u64(n, SEED + 6);
        let (_, cost) = measure_seq(machine(1, 1 << 18, 4, 2048), SEED, |rec| {
            em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
        });
        let stage = &cost.stages[0];
        // T(A): best sequential comparison sort in the same model units.
        let t_seq = n as f64 * (n as f64).log2();
        // Theorem 1: the uniprocessor simulation performs v·β computation,
        // where β = Σ per-superstep max charged work.
        let t_comp = 64.0 * stage.comm.total_comp() as f64;
        let t_comm =
            stage.comm.bsp_star_comm_time(&em_bsp::BspStarParams { p: 1, g: 1.0, b: 2048, l: 1.0 });
        let t_io = cost.io_time as f64;
        let r = theory::observation2_ratios(t_seq, 1, t_comp, t_comm, t_io);
        rows.push(Row {
            id: "F-obs2".into(),
            variant: format!("sort n={n}"),
            n,
            io_ops: cost.io_ops,
            predicted: 0.0,
            lambda: cost.lambda,
            utilization: cost.utilization,
            wall_ms: cost.wall_ms,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "c=comp/T={:.2} comm/T={:.4} io/T={:.4}",
                r.comp_ratio, r.comm_ratio, r.io_ratio
            ),
        });
    }
    rows
}

/// F-faults: robustness sweep — recovered supersteps and wall-clock
/// overhead vs the injected fault rate of a seeded [`em_disk::FaultPlan`].
/// Every recovered run asserts, in process, that its final states and its
/// counted parallel I/O are bit-identical to the fault-free run: retries
/// and replays are tallied separately (`retried_blocks`, `recovery_ops`)
/// and never leak into the paper-facing metric.
fn fig_faults() -> Vec<Row> {
    use em_bsp::{BspProgram, Mailbox, Step};
    use em_core::{RecoveryPolicy, SeqEmSimulator};
    use em_disk::{FaultPlan, RetryPolicy};

    struct Ring {
        rounds: usize,
    }
    impl BspProgram for Ring {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            for e in mb.take_incoming() {
                *state = state.wrapping_add(e.msg);
            }
            if step < self.rounds {
                let v = mb.nprocs();
                mb.send((mb.pid() + 1) % v, *state + step as u64);
                mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            124
        }
        fn max_comm_bytes(&self) -> usize {
            2 * 24
        }
    }

    let v = 32usize;
    let d = 4usize;
    let prog = Ring { rounds: pick(12, 6) };
    let init: Vec<u64> = (0..v as u64).collect();
    // M = 1 KiB forces k = 8, four groups: real paging traffic per round.
    let base = SeqEmSimulator::new(machine(1, 1024, d, 256)).with_seed(SEED).with_checksums(true);
    let (clean, clean_report) = base.run(&prog, init.clone()).unwrap();
    // Generous per-drive horizon: every op of the run sits under the plan.
    let horizon = clean_report.io.parallel_ops * 4 + 64;

    let mut rows = Vec::new();
    let mut base_wall = 0.0f64;
    for &rate in pick(&[0u32, 5, 15, 30][..], &[0u32, 15][..]) {
        let mut sim =
            base.clone().with_retry(RetryPolicy::new(4)).with_recovery(RecoveryPolicy::new(64));
        if rate > 0 {
            // On top of the seeded background rate, a burst of consecutive
            // transients mid-run exhausts the 4-attempt retry policy and
            // forces the superstep-replay path to fire deterministically.
            let mut plan = FaultPlan::seeded(SEED, d, horizon, rate);
            let burst = clean_report.io.parallel_ops / 2;
            for delta in 0..6 {
                plan = plan.with_transient(0, burst + delta);
            }
            sim = sim.with_fault_plan(plan);
        }
        let t0 = std::time::Instant::now();
        let (res, report) = sim.run(&prog, init.clone()).unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(res.states, clean.states, "recovered run must match the fault-free run");
        assert_eq!(
            report.io.parallel_ops, clean_report.io.parallel_ops,
            "retries and replays must not leak into counted parallel I/O"
        );
        if rate == 0 {
            base_wall = wall.max(1e-6);
        }
        let f = report.faults.expect("fault/recovery run carries a report");
        rows.push(Row {
            id: "F-faults".into(),
            variant: format!("diffusion rate={rate}‰"),
            n: v,
            io_ops: report.io.parallel_ops,
            predicted: clean_report.io.parallel_ops as f64,
            lambda: report.lambda,
            utilization: report.io.utilization(),
            wall_ms: wall,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "injected={} retried={} replays={} recovered_steps={} recovery_ops={} wall {:.2}x",
                f.injected.total(),
                f.retried_blocks,
                f.replays,
                f.recovered_supersteps,
                f.recovery_ops,
                wall / base_wall,
            ),
        });
    }
    rows
}

/// F-compute: [`em_core::ComputeMode`] ablation — a deliberately
/// compute-bound multi-round kernel (many mixing rounds per byte of I/O)
/// where `Threaded(n)` should show a compute-phase wall-clock win on a
/// multi-core host. Every threaded run asserts, in process, that its final
/// states, its counted [`em_disk::IoStats`] and its per-phase
/// [`em_core::PhaseIo`] operation counts are bit-identical to the Serial
/// run: the knob may only move wall clock, never what is counted. The
/// per-phase wall breakdowns are returned for `results/BENCH_figures.json`.
fn fig_compute() -> (Vec<Row>, Vec<PhaseWallRow>) {
    use em_bsp::{BspProgram, Mailbox, Step};
    use em_core::{ComputeMode, SeqEmSimulator};
    use em_serial::impl_serial_struct;

    #[derive(Debug, Clone, PartialEq)]
    struct MixState {
        data: Vec<u64>,
    }
    impl_serial_struct!(MixState { data });

    struct Mix {
        rounds: usize,
        inner: usize,
        chunk: usize,
    }
    impl BspProgram for Mix {
        type State = MixState;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut MixState) -> Step {
            let mut salt = 0u64;
            for e in mb.take_incoming() {
                salt = salt.wrapping_add(e.msg);
            }
            // The hot loop: `inner` sequential mixing passes over the
            // chunk — CPU work that dwarfs the superstep's I/O volume.
            for r in 0..self.inner as u64 {
                for x in state.data.iter_mut() {
                    *x = x
                        .wrapping_add(salt ^ r)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(31);
                }
            }
            if step < self.rounds {
                let digest = state.data.iter().fold(0u64, |a, &x| a ^ x);
                mb.send((mb.pid() + 1) % mb.nprocs(), digest);
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            16 + 8 * (self.chunk + 2)
        }
        fn max_comm_bytes(&self) -> usize {
            16 + 16 + 8 + 64
        }
    }

    let v = 32usize;
    let chunk = pick(1024usize, 128);
    let prog = Mix { rounds: pick(6, 3), inner: pick(600, 16), chunk };
    let states: Vec<MixState> = (0..v).map(|i| MixState { data: vec![i as u64; chunk] }).collect();
    let mut rows = Vec::new();
    let mut walls = Vec::new();
    // (states, IoStats, PhaseIo, serial compute wall) of the Serial run.
    let mut baseline: Option<(Vec<MixState>, IoStats, em_core::PhaseIo, f64)> = None;
    for &workers in pick(&[0usize, 2, 4, 8][..], &[0usize, 2][..]) {
        let (mode, label) = if workers == 0 {
            (ComputeMode::Serial, "serial".to_string())
        } else {
            (ComputeMode::Threaded(workers), format!("threaded n={workers}"))
        };
        // M = 256 KiB against μ ≈ 8 KiB: one large group (k ≈ 31) so the
        // worker pool has a wide span of virtual processors to chunk.
        let sim = SeqEmSimulator::new(machine(1, 1 << 18, 4, 2048))
            .with_seed(SEED)
            .with_compute_mode(mode);
        let t0 = std::time::Instant::now();
        let (res, report) = sim.run(&prog, states.clone()).unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let compute_ms = report.phase_wall.compute.as_secs_f64() * 1e3;
        let serial_compute_ms = match &baseline {
            None => {
                baseline = Some((res.states, report.io.clone(), report.phases.clone(), compute_ms));
                compute_ms
            }
            Some((b_states, b_io, b_phases, b_ms)) => {
                assert_eq!(&res.states, b_states, "ComputeMode must not change final states");
                assert_eq!(&report.io, b_io, "ComputeMode must not change counted IoStats");
                assert_eq!(
                    &report.phases, b_phases,
                    "ComputeMode must not change per-phase I/O op counts"
                );
                *b_ms
            }
        };
        // Timing lives only in `wall_ms` and the phase-wall records (both
        // strippable as `…wall_ms` in determinism diffs) and on stderr —
        // the note must stay bit-identical across reruns and modes.
        eprintln!(
            "F-compute mix {label}: compute {compute_ms:.1} ms ({:.2}x vs serial); {}",
            serial_compute_ms / compute_ms.max(1e-9),
            report.phase_wall_summary(),
        );
        rows.push(Row {
            id: "F-compute".into(),
            variant: format!("mix {label}"),
            n: v * chunk,
            io_ops: report.io.parallel_ops,
            predicted: 0.0,
            lambda: report.lambda,
            utilization: report.io.utilization(),
            wall_ms: wall,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "k={}; states+IoStats+PhaseIo asserted identical across ComputeMode",
                report.k
            ),
        });
        walls.push(PhaseWallRow::from_wall(
            format!("F-compute mix {label}"),
            report.io.parallel_ops,
            &report.phase_wall,
        ));
    }
    (rows, walls)
}

/// F-reorg: parallel reorganization-phase ablation (DESIGN.md §3.2.11).
/// Algorithm 2's per-bucket routing plans are built on an attached
/// [`em_core::ComputePool`] while the Computation Phase stays
/// [`ComputeMode::Serial`](em_core::ComputeMode), isolating the pooled
/// plan construction. Every pooled lane asserts, in process, that its
/// final states, counted [`em_disk::IoStats`] and per-phase op counts are
/// bit-identical to the unpooled run — the routing schedule is a pure
/// function of the inputs, so only `reorganize_wall_ms` may move.
fn fig_reorg() -> (Vec<Row>, Vec<PhaseWallRow>) {
    use em_bsp::{BspProgram, Mailbox, Step};
    use em_core::{ComputeMode, ComputePool, ParEmSimulator, SeqEmSimulator};
    use em_serial::impl_serial_struct;

    #[derive(Debug, Clone, PartialEq)]
    struct FanState {
        data: Vec<u64>,
    }
    impl_serial_struct!(FanState { data });

    // Routing-heavy: every virtual processor fans a batch of digests out
    // to strided destinations each superstep, so Step 2 reorganizes many
    // scattered blocks per superstep across every bucket.
    struct Fan {
        rounds: usize,
        out: usize,
        chunk: usize,
    }
    impl BspProgram for Fan {
        type State = FanState;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut FanState) -> Step {
            let mut salt = 0u64;
            for e in mb.take_incoming() {
                salt = salt.wrapping_add(e.msg);
            }
            for x in state.data.iter_mut() {
                *x = x.wrapping_add(salt).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
            }
            if step < self.rounds {
                let n = mb.nprocs();
                let digest = state.data.iter().fold(0u64, |a, &x| a ^ x);
                for i in 1..=self.out {
                    mb.send((mb.pid() + i * 7 + step) % n, digest.wrapping_add(i as u64));
                }
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            16 + 8 * (self.chunk + 2)
        }
        fn max_comm_bytes(&self) -> usize {
            (16 + 8) * (2 * self.out) + 64
        }
    }

    let v = pick(64usize, 16);
    let chunk = pick(256usize, 32);
    let m = pick(1usize << 14, 1 << 12);
    let prog = Fan { rounds: pick(8, 3), out: pick(8, 4), chunk };
    let states: Vec<FanState> = (0..v).map(|i| FanState { data: vec![i as u64; chunk] }).collect();
    let mut rows = Vec::new();
    let mut walls = Vec::new();

    // Small memory against μ ≈ 2 KiB forces many groups, so the
    // reorganization works across `min(D, groups)` buckets — the span the
    // pooled plan builders chunk over.
    let mut seq_baseline: Option<(Vec<FanState>, IoStats, em_core::PhaseIo, f64)> = None;
    for &workers in pick(&[0usize, 2, 4, 8][..], &[0usize, 2][..]) {
        let label = if workers == 0 { "serial".to_string() } else { format!("pool w={workers}") };
        let mut sim = SeqEmSimulator::new(machine(1, m, 4, 1024))
            .with_seed(SEED)
            .with_compute_mode(ComputeMode::Serial);
        if workers > 0 {
            // `Serial` compute + an attached pool: the Computation Phase
            // stays single-threaded, so the pool accelerates exactly one
            // thing — Algorithm 2's plan construction.
            sim = sim.with_compute_pool(ComputePool::new(workers));
        }
        let t0 = std::time::Instant::now();
        let (res, report) = sim.run(&prog, states.clone()).unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let reorg_ms = report.phase_wall.reorganize.as_secs_f64() * 1e3;
        let serial_reorg_ms = match &seq_baseline {
            None => {
                seq_baseline =
                    Some((res.states, report.io.clone(), report.phases.clone(), reorg_ms));
                reorg_ms
            }
            Some((b_states, b_io, b_phases, b_ms)) => {
                assert_eq!(&res.states, b_states, "reorg pooling must not change final states");
                assert_eq!(&report.io, b_io, "reorg pooling must not change counted IoStats");
                assert_eq!(
                    &report.phases, b_phases,
                    "reorg pooling must not change per-phase I/O op counts"
                );
                *b_ms
            }
        };
        eprintln!(
            "F-reorg fan seq {label}: reorganize {reorg_ms:.2} ms ({:.2}x vs serial); {}",
            serial_reorg_ms / reorg_ms.max(1e-9),
            report.phase_wall_summary(),
        );
        rows.push(Row {
            id: "F-reorg".into(),
            variant: format!("fan seq {label}"),
            n: v * prog.out,
            io_ops: report.io.parallel_ops,
            predicted: 0.0,
            lambda: report.lambda,
            utilization: report.io.utilization(),
            wall_ms: wall,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "k={}; states+IoStats+PhaseIo asserted identical across reorg pool widths",
                report.k
            ),
        });
        walls.push(PhaseWallRow::from_wall(
            format!("F-reorg fan seq {label}"),
            report.io.parallel_ops,
            &report.phase_wall,
        ));
    }

    // The p-processor simulator reorganizes per worker; the same pooled
    // plan construction runs inside every worker thread.
    let mut par_baseline: Option<(Vec<FanState>, IoStats, em_core::PhaseIo)> = None;
    for &workers in &[0usize, 4] {
        let label = if workers == 0 { "serial".to_string() } else { format!("pool w={workers}") };
        let mut sim = ParEmSimulator::new(machine(2, m, 4, 1024))
            .with_seed(SEED)
            .with_compute_mode(ComputeMode::Serial);
        if workers > 0 {
            sim = sim.with_compute_pool(ComputePool::new(workers));
        }
        let t0 = std::time::Instant::now();
        let (res, report) = sim.run(&prog, states.clone()).unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        match &par_baseline {
            None => par_baseline = Some((res.states, report.io.clone(), report.phases.clone())),
            Some((b_states, b_io, b_phases)) => {
                assert_eq!(&res.states, b_states, "reorg pooling must not change final states");
                assert_eq!(&report.io, b_io, "reorg pooling must not change counted IoStats");
                assert_eq!(
                    &report.phases, b_phases,
                    "reorg pooling must not change per-phase I/O op counts"
                );
            }
        }
        eprintln!(
            "F-reorg fan par p=2 {label}: reorganize {:.2} ms; {}",
            report.phase_wall.reorganize.as_secs_f64() * 1e3,
            report.phase_wall_summary(),
        );
        rows.push(Row {
            id: "F-reorg".into(),
            variant: format!("fan par p=2 {label}"),
            n: v * prog.out,
            io_ops: report.io.parallel_ops,
            predicted: 0.0,
            lambda: report.lambda,
            utilization: report.io.utilization(),
            wall_ms: wall,
            cache_hit_blocks: 0,
            cache_absorbed_writes: 0,
            note: format!(
                "k={}; states+IoStats+PhaseIo asserted identical across reorg pool widths",
                report.k
            ),
        });
        walls.push(PhaseWallRow::from_wall(
            format!("F-reorg fan par p=2 {label}"),
            report.io.parallel_ops,
            &report.phase_wall,
        ));
    }
    (rows, walls)
}

/// F-tune: [`em_core::AutoTuner`] ablation — hand-picked knobs vs the
/// three `Auto` requests resolved from pinned inputs, the committed BENCH
/// corpus, and the seeded calibration probe. Every auto lane asserts, in
/// process, that the resolution was recorded in
/// [`em_core::CostReport::resolved_config`], that an identically-seeded
/// second run resolves identically, and that final states, per-phase op
/// counts and counted [`em_disk::IoStats`] (the two cache tallies masked
/// — an auto-sized cache absorbs backend traffic) are bit-identical to
/// the manual lane: the tuner may only choose wall-clock knobs.
fn fig_tune() -> (Vec<Row>, Vec<PhaseWallRow>) {
    use em_bsp::{BspProgram, Mailbox, Step};
    use em_core::{AutoTuner, ComputeMode, SeqEmSimulator, TuneInputs};
    use em_disk::Pipeline;
    use em_serial::impl_serial_struct;

    #[derive(Debug, Clone, PartialEq)]
    struct TuneState {
        data: Vec<u64>,
    }
    impl_serial_struct!(TuneState { data });

    struct Churn {
        rounds: usize,
        inner: usize,
        chunk: usize,
    }
    impl BspProgram for Churn {
        type State = TuneState;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut TuneState) -> Step {
            let mut salt = 0u64;
            for e in mb.take_incoming() {
                salt = salt.wrapping_add(e.msg);
            }
            for r in 0..self.inner as u64 {
                for x in state.data.iter_mut() {
                    *x = x
                        .wrapping_add(salt ^ r)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(31);
                }
            }
            if step < self.rounds {
                let digest = state.data.iter().fold(0u64, |a, &x| a ^ x);
                mb.send((mb.pid() + 1) % mb.nprocs(), digest);
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            16 + 8 * (self.chunk + 2)
        }
        fn max_comm_bytes(&self) -> usize {
            16 + 16 + 8 + 64
        }
    }

    let v = 32usize;
    let chunk = pick(512usize, 64);
    let prog = Churn { rounds: pick(5, 3), inner: pick(200, 8), chunk };
    let states: Vec<TuneState> =
        (0..v).map(|i| TuneState { data: vec![i as u64; chunk] }).collect();
    let base_sim = || SeqEmSimulator::new(machine(1, 1 << 18, 4, 2048)).with_seed(SEED);

    // Masked counted-I/O comparison: an auto-sized cache absorbs backend
    // traffic into the two cache tallies without touching anything
    // counted, exactly like the F-cache sweep.
    let masked = |io: &IoStats| {
        let mut io = io.clone();
        io.cache_hit_blocks = 0;
        io.cache_absorbed_writes = 0;
        io
    };

    let mut rows = Vec::new();
    let mut walls = Vec::new();
    let mut baseline: Option<(Vec<TuneState>, IoStats, em_core::PhaseIo)> = None;
    // (label, tuner, expected-note). The explicit lane pins TuneInputs, so
    // its resolved line is a byte-stable artifact carried in the row note;
    // corpus and probe resolutions depend on the host (core count, timer),
    // so their lines go to stderr only.
    let lanes: Vec<(&str, Option<AutoTuner>)> = vec![
        ("manual serial off", None),
        (
            "auto explicit",
            Some(AutoTuner::default().with_inputs(TuneInputs {
                cores: 4,
                compute_per_fetch_x16: 640,
                footprint_bytes: 1 << 16,
            })),
        ),
        ("auto corpus", Some(AutoTuner::default().with_corpus("results/BENCH_figures.json"))),
        ("auto probe", Some(AutoTuner::default().with_probe(SEED))),
    ];
    for (label, tuner) in lanes {
        let sim = match &tuner {
            None => base_sim().with_compute_mode(ComputeMode::Serial).with_pipeline(Pipeline::Off),
            Some(t) => base_sim()
                .with_compute_mode(ComputeMode::Auto)
                .with_pipeline(Pipeline::Auto)
                .with_auto_cache(true)
                .with_tuner(t.clone()),
        };
        let t0 = std::time::Instant::now();
        let (res, report) = sim.run(&prog, states.clone()).unwrap();
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let mut note = "manual baseline".to_string();
        if tuner.is_some() {
            let rc = report
                .resolved_config
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: Auto run must record its resolution"));
            // Identically-seeded reruns resolve identically — the tuner's
            // determinism contract (pinned inputs are pure; the probe is
            // quantized to one log2 bucket per host).
            let (_, rerun) = sim.run(&prog, states.clone()).unwrap();
            assert_eq!(
                rerun.resolved_config.as_ref(),
                Some(rc),
                "{label}: identically-seeded reruns must resolve identically"
            );
            eprintln!("F-tune churn {label}: resolved {}", rc.deterministic_line());
            note = if label == "auto explicit" {
                // Pinned inputs: the line itself is deterministic.
                rc.deterministic_line()
            } else {
                "resolution asserted deterministic; line on stderr".to_string()
            };
        } else {
            assert!(report.resolved_config.is_none(), "manual lane must not record a resolution");
        }
        match &baseline {
            None => baseline = Some((res.states, masked(&report.io), report.phases.clone())),
            Some((b_states, b_io, b_phases)) => {
                assert_eq!(&res.states, b_states, "AutoTuner must not change final states");
                assert_eq!(
                    &masked(&report.io),
                    b_io,
                    "AutoTuner must not change counted IoStats (cache tallies masked)"
                );
                assert_eq!(
                    &report.phases, b_phases,
                    "AutoTuner must not change per-phase I/O op counts"
                );
            }
        }
        rows.push(Row {
            id: "F-tune".into(),
            variant: format!("churn {label}"),
            n: v * chunk,
            io_ops: report.io.parallel_ops,
            predicted: 0.0,
            lambda: report.lambda,
            utilization: report.io.utilization(),
            wall_ms: wall,
            cache_hit_blocks: report.io.cache_hit_blocks,
            cache_absorbed_writes: report.io.cache_absorbed_writes,
            note,
        });
        walls.push(PhaseWallRow::from_wall(
            format!("F-tune churn {label}"),
            report.io.parallel_ops,
            &report.phase_wall,
        ));
    }
    (rows, walls)
}

/// F-cache: write-back block-cache ablation — capacity sweep from 0 (no
/// cache) past `v·μ + γ` (working-set residency) on both the uniprocessor
/// and the `p`-processor simulator. Every cached run asserts, in process,
/// that its final states, message ledger, per-phase operation counts and
/// counted [`em_disk::IoStats`] — with only the two cache tallies masked —
/// are bit-identical to the cache-off run: the cache may only absorb
/// backend traffic (visible in `cache_hit_blocks`/`cache_absorbed_writes`
/// and in the fetch/write wall clock), never change what is counted.
fn fig_cache() -> (Vec<Row>, Vec<PhaseWallRow>) {
    use em_bsp::{BspProgram, Mailbox, Step};
    use em_core::{ParEmSimulator, SeqEmSimulator};

    struct Ring {
        rounds: usize,
    }
    impl BspProgram for Ring {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            for e in mb.take_incoming() {
                *state = state.wrapping_add(e.msg);
            }
            if step < self.rounds {
                let v = mb.nprocs();
                mb.send((mb.pid() + 1) % v, *state + step as u64);
                mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            124
        }
        fn max_comm_bytes(&self) -> usize {
            2 * 24
        }
    }

    let v = 32usize;
    let d = 4usize;
    let prog = Ring { rounds: pick(12, 6) };
    let init: Vec<u64> = (0..v as u64).collect();
    // The paper-facing residency threshold: one cache big enough for every
    // virtual processor's context plus the superstep's message envelopes.
    let vmug = v * prog.max_state_bytes() + prog.max_comm_bytes();
    let caps: Vec<usize> =
        pick(vec![0, vmug / 4, vmug / 2, vmug, 4 * vmug], vec![0, vmug, 4 * vmug]);

    let mut rows = Vec::new();
    let mut walls = Vec::new();
    // (final states, ledger, IoStats, PhaseIo) of each sim's cache-off run.
    type Baseline = (Vec<u64>, em_bsp::CommLedger, IoStats, em_core::PhaseIo);
    for par in [false, true] {
        // M = 1 KiB forces k = 8 (four groups per processor): real paging
        // traffic every superstep, so the cache has something to absorb.
        let mut baseline: Option<Baseline> = None;
        for &cap in &caps {
            let t0 = std::time::Instant::now();
            let (res, report) = if par {
                ParEmSimulator::new(machine(4, 1024, d, 256))
                    .with_seed(SEED)
                    .with_cache(cap)
                    .run(&prog, init.clone())
                    .unwrap()
            } else {
                SeqEmSimulator::new(machine(1, 1024, d, 256))
                    .with_seed(SEED)
                    .with_cache(cap)
                    .run(&prog, init.clone())
                    .unwrap()
            };
            let wall = t0.elapsed().as_secs_f64() * 1e3;
            let mut masked = report.io.clone();
            masked.cache_hit_blocks = 0;
            masked.cache_absorbed_writes = 0;
            match &baseline {
                None => {
                    assert_eq!(cap, 0, "the first sweep point is the cache-off baseline");
                    baseline = Some((res.states, res.ledger, masked, report.phases.clone()));
                }
                Some((b_states, b_ledger, b_io, b_phases)) => {
                    assert_eq!(&res.states, b_states, "cache must not change final states");
                    assert_eq!(&res.ledger, b_ledger, "cache must not change the ledger");
                    assert_eq!(&masked, b_io, "cache must not change counted IoStats");
                    assert_eq!(&report.phases, b_phases, "cache must not move phase counts");
                }
            }
            if cap >= vmug {
                assert!(
                    report.io.cache_hit_blocks > 0,
                    "a cache at working-set capacity must absorb reads"
                );
                assert!(
                    report.io.cache_absorbed_writes > 0,
                    "a write-back cache must buffer writes until the barrier"
                );
            }
            if cap == 0 {
                assert_eq!(report.io.cache_hit_blocks, 0);
                assert_eq!(report.io.cache_absorbed_writes, 0);
            }
            let label = format!(
                "{} cache={cap}B{}",
                if par { "par p=4" } else { "seq" },
                if cap >= vmug && cap > 0 { " (≥v·μ+γ)" } else { "" }
            );
            // Timing goes to stderr and the `…wall_ms` fields only; the
            // note stays bit-identical across reruns.
            eprintln!("F-cache {label}: wall {wall:.1} ms; {}", report.phase_wall_summary());
            rows.push(Row {
                id: "F-cache".into(),
                variant: label.clone(),
                n: v,
                io_ops: report.io.parallel_ops,
                predicted: 0.0,
                lambda: report.lambda,
                utilization: report.io.utilization(),
                wall_ms: wall,
                cache_hit_blocks: report.io.cache_hit_blocks,
                cache_absorbed_writes: report.io.cache_absorbed_writes,
                note: format!(
                    "hits={} absorbed={}; states+ledger+IoStats asserted identical to cache-off",
                    report.io.cache_hit_blocks, report.io.cache_absorbed_writes
                ),
            });
            walls.push(PhaseWallRow::from_wall(
                format!("F-cache {label}"),
                report.io.parallel_ops,
                &report.phase_wall,
            ));
        }
    }
    (rows, walls)
}

/// All regular files under `dir` (recursively), path-sorted, with their
/// contents — the raw bytes the simulators left on the drive files. Both
/// simulators `sync()` at every superstep boundary, so after a run the
/// files hold the final committed image.
fn drive_bytes(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries {
            let p = entry.expect("dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).unwrap_or(&p).to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&p).expect("drive file readable")));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// F-stream: streaming-pipeline depth ablation — [`Pipeline::Stream`]`(n)`
/// for n = 1…8 against the synchronous `Pipeline::Off` baseline on the
/// `disks`/`procs` sort workload, file-backed so the window has real
/// transfers to overlap, on both the uniprocessor and the `p`-processor
/// simulator. Every lane asserts, in process, that its sorted output, its
/// counted per-stage [`em_disk::IoStats`], its per-phase
/// [`em_core::PhaseIo`] operation counts, its message ledger and the raw
/// bytes left on the drive files are bit-identical to the `Off` run — the
/// window depth may only move wall clock, never what is counted or
/// stored. `DoubleBuffer` rides along to demonstrate it is `Stream(1)` by
/// another name. The per-phase wall breakdowns land in
/// `results/BENCH_figures.json`.
fn fig_stream() -> (Vec<Row>, Vec<PhaseWallRow>) {
    let n = pick(60_000usize, 3_000);
    let items = random_u64(n, SEED + 8);
    let d = 4usize;
    let m = 1usize << 18;
    // Depth ablation 1→8 plus the synchronous baseline; the first lane
    // must stay `Off` — it seeds the fingerprint every other lane is
    // compared against.
    let lanes: Vec<(Pipeline, &str)> = pick(
        vec![
            (Pipeline::Off, "off"),
            (Pipeline::DoubleBuffer, "double-buffer"),
            (Pipeline::Stream(1), "stream n=1"),
            (Pipeline::Stream(2), "stream n=2"),
            (Pipeline::Stream(4), "stream n=4"),
            (Pipeline::Stream(8), "stream n=8"),
        ],
        vec![
            (Pipeline::Off, "off"),
            (Pipeline::Stream(1), "stream n=1"),
            (Pipeline::Stream(4), "stream n=4"),
        ],
    );

    let mut rows = Vec::new();
    let mut walls = Vec::new();
    // The Off lane's full fingerprint: sorted output, per-stage counted
    // IoStats, per-phase op counts, per-stage ledgers, drive bytes.
    type Baseline = (
        Vec<u64>,
        Vec<IoStats>,
        Vec<em_core::PhaseIo>,
        Vec<em_bsp::CommLedger>,
        Vec<(String, Vec<u8>)>,
    );
    for p in pick(vec![1usize, 4], vec![1usize, 2]) {
        let mut baseline: Option<Baseline> = None;
        let mut base_wall = 0.0f64;
        for &(pl, tag) in &lanes {
            let dir = sweep_dir(&format!("stream-p{p}-{}", tag.replace(' ', "-")));
            let (out, fcost) = if p == 1 {
                measure_seq_file(machine(1, m, d, 2048), SEED, &dir, IoMode::Parallel, pl, |rec| {
                    em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
                })
            } else {
                measure_par_file(machine(p, m, d, 2048), SEED, &dir, IoMode::Parallel, pl, |rec| {
                    em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap()
                })
            };
            let bytes = drive_bytes(&dir);
            std::fs::remove_dir_all(&dir).ok();
            let phases: Vec<em_core::PhaseIo> =
                fcost.stages.iter().map(|r| r.phases.clone()).collect();
            let ledgers: Vec<em_bsp::CommLedger> =
                fcost.stages.iter().map(|r| r.comm.clone()).collect();
            match &baseline {
                None => {
                    assert_eq!(pl, Pipeline::Off, "first lane is the synchronous baseline");
                    base_wall = fcost.wall_ms.max(1e-9);
                    baseline = Some((out, stage_stats(&fcost), phases, ledgers, bytes));
                }
                Some((b_out, b_io, b_phases, b_ledgers, b_bytes)) => {
                    assert_eq!(&out, b_out, "{tag}: output diverged from Pipeline::Off");
                    assert_eq!(
                        &stage_stats(&fcost),
                        b_io,
                        "{tag}: counted IoStats diverged from Pipeline::Off"
                    );
                    assert_eq!(&phases, b_phases, "{tag}: per-phase op counts diverged");
                    assert_eq!(&ledgers, b_ledgers, "{tag}: message ledger diverged");
                    // Compare drive bytes without letting a failure dump
                    // whole drive files.
                    let b_names: Vec<&str> = b_bytes.iter().map(|(f, _)| f.as_str()).collect();
                    let names: Vec<&str> = bytes.iter().map(|(f, _)| f.as_str()).collect();
                    assert_eq!(names, b_names, "{tag}: drive file set diverged");
                    for ((file, b), (_, g)) in b_bytes.iter().zip(&bytes) {
                        assert!(g == b, "{tag}: drive file {file} bytes diverged");
                    }
                }
            }
            // Timing lives only in `wall_ms`, the phase-wall records and
            // stderr; the note stays bit-identical across reruns.
            eprintln!(
                "F-stream p={p} {tag}: wall {:.1} ms ({:.2}x vs off)",
                fcost.wall_ms,
                base_wall / fcost.wall_ms.max(1e-9),
            );
            rows.push(Row {
                id: "F-stream".into(),
                variant: format!("file sort p={p} ({tag})"),
                n,
                io_ops: fcost.io_ops,
                predicted: 0.0,
                lambda: fcost.lambda,
                utilization: fcost.utilization,
                wall_ms: fcost.wall_ms,
                cache_hit_blocks: 0,
                cache_absorbed_writes: 0,
                note: format!(
                    "depth={}; output+IoStats+PhaseIo+ledger+drive bytes asserted identical to off",
                    pl.depth()
                ),
            });
            let mut pw = em_core::PhaseWall::default();
            for r in &fcost.stages {
                pw.merge_max(&r.phase_wall);
            }
            walls.push(PhaseWallRow::from_wall(
                format!("F-stream file sort p={p} ({tag})"),
                fcost.io_ops,
                &pw,
            ));
        }
    }
    (rows, walls)
}

/// F-engine: stripe-engine ablation — the identical file-backed sort under
/// the worker-thread-per-drive engine and the io_uring kernel-ring engine
/// (DESIGN.md §3.2.10). The engine is a pure wall-clock knob: counting
/// happens in `DiskArray` at submission time, above the backend, and the
/// uring engine keeps the per-drive FIFO contract — so every uring lane
/// asserts output, counted IoStats, per-phase op counts, message ledger
/// *and raw drive bytes* bit-identical to the threaded lane. When io_uring
/// is unavailable (feature off, non-Linux, or a kernel that refuses rings)
/// the sweep emits the threaded rows only and notes the skip on stderr.
fn fig_engine() -> (Vec<Row>, Vec<PhaseWallRow>) {
    use em_bench::measure::{measure_par_sim, measure_seq_sim};
    use em_core::{ParEmSimulator, SeqEmSimulator};
    use em_disk::EngineKind;

    let n = pick(60_000usize, 3_000);
    let items = random_u64(n, SEED + 13);
    let d = 4usize;
    let m = 1usize << 18;
    let uring = em_disk::uring_available();
    if !uring {
        eprintln!(
            "F-engine: io_uring unavailable (feature off or kernel refusal); threaded lanes only"
        );
    }
    let engines: Vec<(EngineKind, &str)> = if uring {
        vec![(EngineKind::Threaded, "threaded"), (EngineKind::Uring, "uring")]
    } else {
        vec![(EngineKind::Threaded, "threaded")]
    };

    let mut rows = Vec::new();
    let mut walls = Vec::new();
    // The threaded lane's full fingerprint, per (p, pipeline) cell.
    type Baseline = (
        Vec<u64>,
        Vec<IoStats>,
        Vec<em_core::PhaseIo>,
        Vec<em_bsp::CommLedger>,
        Vec<(String, Vec<u8>)>,
    );
    for &(p, pl, pltag) in pick(
        &[
            (1usize, Pipeline::Off, "off"),
            (1, Pipeline::Stream(4), "stream n=4"),
            (4, Pipeline::Stream(4), "stream n=4"),
        ][..],
        &[(1usize, Pipeline::Off, "off"), (2, Pipeline::Stream(2), "stream n=2")][..],
    ) {
        let mut baseline: Option<Baseline> = None;
        let mut base_wall = 0.0f64;
        for &(engine, tag) in &engines {
            let dir = sweep_dir(&format!("engine-p{p}-{}-{tag}", pltag.replace(' ', "-")));
            let (out, fcost) = if p == 1 {
                measure_seq_sim(
                    SeqEmSimulator::new(machine(1, m, d, 2048))
                        .with_seed(SEED)
                        .with_file_backend(&dir)
                        .with_io_mode(IoMode::Parallel)
                        .with_pipeline(pl)
                        .with_engine(engine),
                    |rec| em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap(),
                )
            } else {
                measure_par_sim(
                    p,
                    ParEmSimulator::new(machine(p, m, d, 2048))
                        .with_seed(SEED)
                        .with_file_backend(&dir)
                        .with_io_mode(IoMode::Parallel)
                        .with_pipeline(pl)
                        .with_engine(engine),
                    |rec| em_algos::sort::cgm_sort(rec, 64, items.clone()).unwrap(),
                )
            };
            let bytes = drive_bytes(&dir);
            std::fs::remove_dir_all(&dir).ok();
            let phases: Vec<em_core::PhaseIo> =
                fcost.stages.iter().map(|r| r.phases.clone()).collect();
            let ledgers: Vec<em_bsp::CommLedger> =
                fcost.stages.iter().map(|r| r.comm.clone()).collect();
            match &baseline {
                None => {
                    assert_eq!(engine, EngineKind::Threaded, "first lane is the threaded baseline");
                    base_wall = fcost.wall_ms.max(1e-9);
                    baseline = Some((out, stage_stats(&fcost), phases, ledgers, bytes));
                }
                Some((b_out, b_io, b_phases, b_ledgers, b_bytes)) => {
                    assert_eq!(&out, b_out, "{tag}: output diverged from threaded engine");
                    assert_eq!(
                        &stage_stats(&fcost),
                        b_io,
                        "{tag}: counted IoStats diverged from threaded engine"
                    );
                    assert_eq!(&phases, b_phases, "{tag}: per-phase op counts diverged");
                    assert_eq!(&ledgers, b_ledgers, "{tag}: message ledger diverged");
                    // Compare drive bytes without letting a failure dump
                    // whole drive files.
                    let b_names: Vec<&str> = b_bytes.iter().map(|(f, _)| f.as_str()).collect();
                    let names: Vec<&str> = bytes.iter().map(|(f, _)| f.as_str()).collect();
                    assert_eq!(names, b_names, "{tag}: drive file set diverged");
                    for ((file, b), (_, g)) in b_bytes.iter().zip(&bytes) {
                        assert!(g == b, "{tag}: drive file {file} bytes diverged");
                    }
                }
            }
            eprintln!(
                "F-engine p={p} {pltag} {tag}: wall {:.1} ms ({:.2}x vs threaded)",
                fcost.wall_ms,
                base_wall / fcost.wall_ms.max(1e-9),
            );
            rows.push(Row {
                id: "F-engine".into(),
                variant: format!("file sort p={p} {pltag} ({tag})"),
                n,
                io_ops: fcost.io_ops,
                predicted: 0.0,
                lambda: fcost.lambda,
                utilization: fcost.utilization,
                wall_ms: fcost.wall_ms,
                cache_hit_blocks: 0,
                cache_absorbed_writes: 0,
                note: if matches!(engine, EngineKind::Threaded) {
                    "threaded baseline lane".into()
                } else {
                    "output+IoStats+PhaseIo+ledger+drive bytes asserted identical to threaded"
                        .into()
                },
            });
            let mut pw = em_core::PhaseWall::default();
            for r in &fcost.stages {
                pw.merge_max(&r.phase_wall);
            }
            walls.push(PhaseWallRow::from_wall(
                format!("F-engine file sort p={p} {pltag} ({tag})"),
                fcost.io_ops,
                &pw,
            ));
        }
    }
    (rows, walls)
}

/// F-fig2: trace the two reorganization steps of Algorithm 2 (Figure 2).
fn fig_fig2() -> Vec<Row> {
    let d = 4usize;
    let b = 256usize;
    let mut alloc = TrackAllocator::new(d);
    let geom = MsgGeometry::allocate(&mut alloc, 16, 2, 4000, d, b).unwrap();
    let mut disks = DiskArray::new_memory(DiskConfig::new(d, b).unwrap());
    let mut scratch = ScratchState::new(&geom);
    let mut rng = StdRng::seed_from_u64(SEED);
    for src_group in 0..8u32 {
        let msgs: Vec<OutMsg> = (0..24u32)
            .map(|i| OutMsg {
                dst: (i * 5 + src_group) % 16,
                src: src_group * 2,
                seq: i,
                payload: vec![i as u8; 100],
            })
            .collect();
        scatter_messages(
            &mut disks,
            &mut alloc,
            &geom,
            &mut scratch,
            src_group as usize,
            msgs,
            &mut rng,
            Placement::Random,
        )
        .unwrap();
    }
    let blocks = scratch.total();
    let balance = scratch.balance_factor();
    let ops_before = disks.stats().parallel_ops;
    let (counts, trace) = simulate_routing(
        &mut disks,
        &mut alloc,
        &geom,
        scratch,
        &mut RoutingScratch::new(),
        &mut BufferPool::new(),
        None,
    )
    .unwrap();
    let ops_routing = disks.stats().parallel_ops - ops_before;
    vec![Row {
        id: "F-fig2".into(),
        variant: "SimulateRouting trace".into(),
        n: blocks,
        io_ops: ops_routing,
        predicted: (4 * blocks / d) as f64,
        lambda: 0,
        utilization: disks.stats().utilization(),
        wall_ms: 0.0,
        cache_hit_blocks: 0,
        cache_absorbed_writes: 0,
        note: format!(
            "step1 rounds={} step2 rounds={} idle={} balance={balance:.2} groups_filled={}",
            trace.step1_rounds,
            trace.step2_rounds,
            trace.idle_slots,
            counts.counts.iter().filter(|&&c| c > 0).count()
        ),
    }]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    SMOKE.store(args.iter().any(|a| a == "--smoke"), Ordering::Relaxed);
    let which = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");

    let mut rows = Vec::new();
    let mut walls: Vec<PhaseWallRow> = Vec::new();
    if matches!(which, "all" | "blocking") {
        rows.extend(fig_blocking());
    }
    if matches!(which, "all" | "disks") {
        rows.extend(fig_disks());
    }
    if matches!(which, "all" | "procs") {
        rows.extend(fig_procs());
    }
    if matches!(which, "all" | "balance") {
        rows.extend(fig_balance());
    }
    if matches!(which, "all" | "lambda") {
        rows.extend(fig_lambda());
    }
    if matches!(which, "all" | "sibeyn") {
        rows.extend(fig_sibeyn());
    }
    if matches!(which, "all" | "group-size") {
        rows.extend(fig_group_size());
    }
    if matches!(which, "all" | "det-vs-rand") {
        rows.extend(fig_det_vs_rand());
    }
    if matches!(which, "all" | "contraction") {
        rows.extend(fig_contraction());
    }
    if matches!(which, "all" | "obs2") {
        rows.extend(fig_obs2());
    }
    if matches!(which, "all" | "faults") {
        rows.extend(fig_faults());
    }
    if matches!(which, "all" | "compute") {
        let (r, w) = fig_compute();
        rows.extend(r);
        walls.extend(w);
    }
    if matches!(which, "all" | "reorg") {
        let (r, w) = fig_reorg();
        rows.extend(r);
        walls.extend(w);
    }
    if matches!(which, "all" | "tune") {
        let (r, w) = fig_tune();
        rows.extend(r);
        walls.extend(w);
    }
    if matches!(which, "all" | "cache") {
        let (r, w) = fig_cache();
        rows.extend(r);
        walls.extend(w);
    }
    if matches!(which, "all" | "stream") {
        let (r, w) = fig_stream();
        rows.extend(r);
        walls.extend(w);
    }
    if matches!(which, "all" | "engine") {
        let (r, w) = fig_engine();
        rows.extend(r);
        walls.extend(w);
    }
    if matches!(which, "all" | "fig2") {
        rows.extend(fig_fig2());
    }

    if json {
        print_json(&rows);
    } else {
        print_table("Figure-style sweeps", &rows);
    }
    let smoke = SMOKE.load(Ordering::Relaxed);
    let config = format!("M=256KiB D=4 B=2048 (per-sweep overrides inline); which={which}");
    match write_bench_json("figures", SEED, smoke, &config, &rows, &walls) {
        // Stderr so `--json` stdout stays pure JSON lines.
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results/BENCH_figures.json: {e}"),
    }
}
