//! traffic — seeded multi-tenant load generator for the `em-service`
//! job service.
//!
//! Replays a deterministic mix of CGM jobs (sample sort, permutation
//! routing, prefix sums, matrix transpose — the Table 1 Group A
//! workloads) as concurrent tenants of one [`SimService`], and asserts
//! the service metering invariant **in process**: every tenant's counted
//! per-stage `IoStats` and final-state fingerprint are bit-identical to
//! the same job run solo on a private `DiskArray`.
//!
//! Usage: `traffic [--smoke] [--json] [--jobs N] [--workers W] [--seed S]`
//!
//! * `--smoke` — CI-sized run (few dozen jobs, small inputs), same code
//!   path as the full run.
//! * `--json` — print the deterministic [`em_service::ServiceReport`] ledger to
//!   stdout (one JSON object per tenant, sorted by `(name, seed)`;
//!   byte-identical across identically-seeded runs — the CI soak lane
//!   diffs exactly this). The human summary moves to stderr.
//!
//! Every invocation also writes `results/BENCH_traffic.json`.

use em_bench::report::{write_bench_json, PhaseWallRow, Row};
use em_bench::workloads::{random_perm, random_u64};
use em_bsp::Executor;
use em_core::{EmMachine, SeqEmSimulator};
use em_service::{JobSpec, ServiceConfig, SimService, SoloRunner, TenantRecord};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

// Shared machine shape: every tenant is priced against the same
// (M, D, B) uniprocessor and the service's array matches it.
const M: usize = 1 << 17; // 128 KiB per-tenant memory
const D: usize = 2; // shared drives
const B: usize = 1024; // bytes per track
const TRACKS_PER_TENANT: usize = 2048; // per-drive region request
const MU: usize = 1 << 16; // declared context budget, bytes
const GAMMA: usize = 1 << 16; // declared comm envelope, bytes

fn machine() -> EmMachine {
    EmMachine::uniprocessor(M, D, B, 1)
}

/// One deterministic job of the mix.
#[derive(Clone)]
struct Job {
    name: String,
    kind: usize,
    n: usize,
    v: usize,
    seed: u64,
}

/// The seeded job mix: kinds cycle, sizes sweep, seeds split off the
/// master seed — pure arithmetic, so identical `(seed, jobs)` always
/// produce the identical mix.
fn job_mix(master_seed: u64, jobs: usize, smoke: bool) -> Vec<Job> {
    let kinds = ["sort", "permute", "prefix", "transpose"];
    (0..jobs)
        .map(|i| {
            let kind = i % kinds.len();
            let base = if smoke { 64 } else { 512 };
            let n = base + (i % 7) * base / 2;
            let v = if i % 3 == 0 { 16 } else { 8 };
            let seed = master_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Job { name: format!("job-{i:04}-{}", kinds[kind]), kind, n, v, seed }
        })
        .collect()
}

/// Run one job's CGM pipeline on any executor; returns a checksum of the
/// pipeline output (for cross-executor comparison).
fn run_job<E: Executor>(exec: &E, job: &Job) -> u64 {
    match job.kind {
        0 => {
            let out = em_algos::sort::cgm_sort(exec, job.v, random_u64(job.n, job.seed))
                .expect("sort tenant failed");
            out.iter().fold(0u64, |h, x| h.rotate_left(7) ^ x)
        }
        1 => {
            let items = random_u64(job.n, job.seed);
            let perm = random_perm(job.n, job.seed ^ 0xFEED);
            let out = em_algos::permute::cgm_permute(exec, job.v, items, &perm)
                .expect("permute tenant failed");
            out.iter().fold(0u64, |h, x| h.rotate_left(7) ^ x)
        }
        2 => {
            let out = em_algos::prefix::cgm_prefix_sums(exec, job.v, random_u64(job.n, job.seed))
                .expect("prefix tenant failed");
            out.iter().fold(0u64, |h, x| h.rotate_left(7) ^ x)
        }
        _ => {
            let c = 8;
            let r = job.n / c;
            let out =
                em_algos::transpose::cgm_transpose(exec, job.v, r, c, random_u64(r * c, job.seed))
                    .expect("transpose tenant failed");
            out.iter().fold(0u64, |h, x| h.rotate_left(7) ^ x)
        }
    }
}

/// Assert the metering invariant for one job: the service record equals
/// the solo reference stage-for-stage.
fn assert_bit_identical(job: &Job, record: &TenantRecord, solo: &[em_core::CostReport], fp: u32) {
    assert_eq!(record.stages.len(), solo.len(), "{}: stage count differs from solo run", job.name);
    for (i, (svc, ref_)) in record.stages.iter().zip(solo).enumerate() {
        assert_eq!(svc.io, ref_.io, "{} stage {i}: counted IoStats differ from solo", job.name);
        assert_eq!(svc.lambda, ref_.lambda, "{} stage {i}: lambda differs", job.name);
        assert_eq!(svc.io_time, ref_.io_time, "{} stage {i}: io_time differs", job.name);
    }
    assert_eq!(record.state_fingerprint, fp, "{}: state fingerprint differs from solo", job.name);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let opt = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|s| s.parse::<u64>().unwrap_or_else(|_| panic!("{flag} needs a numeric argument")))
    };
    let smoke = has("--smoke");
    let json = has("--json");
    let master_seed = opt("--seed").unwrap_or(0x7AF_F1C);
    let jobs = opt("--jobs").unwrap_or(if smoke { 48 } else { 240 }) as usize;
    let workers = (opt("--workers").unwrap_or(4) as usize).max(2);

    let mix = job_mix(master_seed, jobs, smoke);
    let service = SimService::new(
        ServiceConfig::new(D, B, workers * TRACKS_PER_TENANT + 64, workers * (MU * 64 + GAMMA))
            .with_compute_slots(workers),
    );

    // Workers drain the job queue; a barrier after each worker's first
    // admission guarantees ≥ `workers` genuinely concurrent tenants on
    // the substrate at least once per run.
    let next = AtomicUsize::new(0);
    let gate = Barrier::new(workers);
    let peak_tenants = Mutex::new(0usize);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut first = true;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = mix.get(i) else {
                        if first {
                            // Fewer jobs than workers: still meet the barrier.
                            gate.wait();
                        }
                        break;
                    };

                    // Solo reference on a private array.
                    let solo = SoloRunner::new(SeqEmSimulator::new(machine()).with_seed(job.seed));
                    let solo_out = run_job(&solo, job);
                    let (solo_stages, solo_fp) = solo.finish();

                    // The same job as a service tenant.
                    let spec = JobSpec::new(&job.name, job.seed, machine(), job.v)
                        .with_budgets(MU, GAMMA)
                        .with_tracks(TRACKS_PER_TENANT);
                    let lease = service
                        .admit(spec)
                        .unwrap_or_else(|e| panic!("{} was refused admission: {e}", job.name));
                    if first {
                        first = false;
                        let active = service.active_tenants();
                        let mut peak = peak_tenants.lock().unwrap();
                        *peak = (*peak).max(active);
                        drop(peak);
                        gate.wait();
                    }
                    let svc_out = run_job(&lease, job);
                    let record = lease.complete();

                    assert_eq!(svc_out, solo_out, "{}: pipeline output differs", job.name);
                    assert_bit_identical(job, &record, &solo_stages, solo_fp);
                }
            });
        }
    });

    let peak = *peak_tenants.lock().unwrap();
    assert!(peak >= 2, "load generator never had 2 concurrent tenants (peak {peak})");

    let report = service.report();
    assert_eq!(report.records().len(), jobs, "every job must file a ledger record");

    let total_ops: u64 = report.records().iter().map(TenantRecord::total_io_ops).sum();
    let rows: Vec<Row> = report
        .records()
        .iter()
        .map(|r| Row {
            id: r.name.clone(),
            variant: format!("service tenant v={} D={D}", r.v),
            n: r.v,
            io_ops: r.total_io_ops(),
            predicted: 0.0,
            lambda: r.stages.iter().map(|s| s.lambda).sum(),
            utilization: 0.0,
            wall_ms: r.stages.iter().map(|s| s.wall.as_secs_f64() * 1e3).sum(),
            cache_hit_blocks: r.stages.iter().map(|s| s.io.cache_hit_blocks).sum(),
            cache_absorbed_writes: r.stages.iter().map(|s| s.io.cache_absorbed_writes).sum(),
            note: format!("fingerprint {:08x}", r.state_fingerprint),
        })
        .collect();
    let walls: Vec<PhaseWallRow> = report
        .records()
        .iter()
        .map(|r| PhaseWallRow::from_stages(r.name.clone(), &r.stages))
        .collect();
    let config = format!(
        "service D={D} B={B} tracks/tenant={TRACKS_PER_TENANT} mu={MU} gamma={GAMMA} workers={workers}"
    );
    let path = write_bench_json("traffic", master_seed, smoke, &config, &rows, &walls)
        .expect("writing results/BENCH_traffic.json");

    let summary = format!(
        "traffic: {jobs} jobs as concurrent tenants (peak {peak} in flight, {} arbiter slots), \
         {total_ops} counted parallel I/O ops, all bit-identical to solo runs -> {}",
        service.slots_granted(),
        path.display()
    );
    if json {
        print!("{}", report.deterministic_json());
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
}
