//! Measurement plumbing: run a CGM pipeline on a recording EM simulator
//! and collapse the per-stage cost reports into one comparable record.
//!
//! Wall-clock methodology: the timed region wraps the whole pipeline, and
//! the simulators sync their disks at every superstep boundary (including
//! the last one) *inside* `run()` — so for file-backed runs the measured
//! wall clock covers durable writes, not just submitted ones. Counted
//! parallel I/O operations remain the primary, backend- and
//! `IoMode`-independent signal; wall clock is the secondary signal and is
//! only meaningful on the file backend (see DESIGN.md).

use em_bsp::BspStarParams;
use em_core::{CostReport, EmMachine, ParEmSimulator, Recording, SeqEmSimulator};
use em_disk::{IoMode, Pipeline};
use std::path::Path;
use std::time::Instant;

/// One EM-simulated run's aggregate cost.
#[derive(Debug, Clone)]
pub struct EmRunCost {
    /// Total parallel I/O operations (summed over pipeline stages; for
    /// `p > 1`, summed over processors as well — divide by `p` for the
    /// per-processor critical path approximation).
    pub io_ops: u64,
    /// Charged I/O time (`G ·` per-processor max ops, summed over stages).
    pub io_time: u64,
    /// λ across all pipeline stages.
    pub lambda: usize,
    /// Disk utilization (blocks moved per op·D).
    pub utilization: f64,
    /// Worst Lemma 2 balance factor seen.
    pub worst_balance: f64,
    /// Virtual message bytes routed.
    pub msg_bytes: u64,
    /// Real inter-processor bytes (p > 1 only).
    pub real_comm_bytes: u64,
    /// Wall-clock time of the run.
    pub wall_ms: f64,
    /// `p` used.
    pub p: usize,
    /// Per-stage reports, for detailed dumps.
    pub stages: Vec<CostReport>,
}

fn collapse(stages: Vec<CostReport>, p: usize, wall_ms: f64) -> EmRunCost {
    let io_ops = stages.iter().map(|r| r.io.parallel_ops).sum();
    let io_time = stages.iter().map(|r| r.io_time).sum();
    let lambda = stages.iter().map(|r| r.lambda).sum();
    let blocks: u64 = stages.iter().map(|r| r.io.blocks_moved()).sum();
    let d = stages.first().map_or(1, |r| r.io.per_disk_reads.len()) as f64;
    let utilization = if io_ops == 0 { 0.0 } else { blocks as f64 / (io_ops as f64 * d) };
    let worst_balance = stages.iter().map(|r| r.worst_balance()).fold(1.0, f64::max);
    let msg_bytes = stages.iter().map(|r| r.comm.total_bytes()).sum();
    let real_comm_bytes = stages.iter().map(|r| r.real_comm_bytes).sum();
    EmRunCost {
        io_ops,
        io_time,
        lambda,
        utilization,
        worst_balance,
        msg_bytes,
        real_comm_bytes,
        wall_ms,
        p,
        stages,
    }
}

/// A standard benchmark machine: `M` bytes of memory, `D` disks of `B`
/// bytes, `G = 1`, router `b = B`.
pub fn machine(p: usize, m: usize, d: usize, b: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: m,
        d,
        b_bytes: b,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b, l: 1.0 },
    }
}

/// Run `pipeline` against a recording uniprocessor simulator and collapse
/// the cost. The timed region includes the simulator's final durable
/// `sync()` (performed inside `run()` at the last superstep boundary), so
/// file-backed wall clocks cover writes that actually reached the files.
pub fn measure_seq<T>(
    mach: EmMachine,
    seed: u64,
    pipeline: impl FnOnce(&Recording<SeqEmSimulator>) -> T,
) -> (T, EmRunCost) {
    measure_seq_sim(SeqEmSimulator::new(mach).with_seed(seed), pipeline)
}

/// [`measure_seq`] on a file backend under `dir`, with an explicit
/// [`IoMode`] and [`Pipeline`] policy. Counted I/O is identical to the
/// memory run — and, by construction, identical across pipeline modes
/// (ops are counted at submission time) — only the wall clock (and the
/// bytes on disk) differ.
pub fn measure_seq_file<T>(
    mach: EmMachine,
    seed: u64,
    dir: impl AsRef<Path>,
    mode: IoMode,
    pl: Pipeline,
    pipeline: impl FnOnce(&Recording<SeqEmSimulator>) -> T,
) -> (T, EmRunCost) {
    let sim = SeqEmSimulator::new(mach)
        .with_seed(seed)
        .with_file_backend(dir.as_ref())
        .with_io_mode(mode)
        .with_pipeline(pl);
    measure_seq_sim(sim, pipeline)
}

/// [`measure_seq`] against a caller-configured simulator, for sweeps that
/// toggle knobs the convenience helpers don't expose (stripe engine, core
/// pinning, compute mode, fault plans).
pub fn measure_seq_sim<T>(
    sim: SeqEmSimulator,
    pipeline: impl FnOnce(&Recording<SeqEmSimulator>) -> T,
) -> (T, EmRunCost) {
    let rec = Recording::new(sim);
    let t0 = Instant::now();
    let out = pipeline(&rec);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let stages = rec.take_reports();
    (out, collapse(stages, 1, wall))
}

/// Run `pipeline` against a recording `p`-processor simulator and collapse
/// the cost. As with [`measure_seq`], the timed region covers each
/// processor's final durable `sync()`.
pub fn measure_par<T>(
    mach: EmMachine,
    seed: u64,
    pipeline: impl FnOnce(&Recording<ParEmSimulator>) -> T,
) -> (T, EmRunCost) {
    let p = mach.p;
    measure_par_sim(p, ParEmSimulator::new(mach).with_seed(seed), pipeline)
}

/// [`measure_par`] on file backends under `dir/proc-<i>/`, with an
/// explicit [`IoMode`] and [`Pipeline`] policy.
pub fn measure_par_file<T>(
    mach: EmMachine,
    seed: u64,
    dir: impl AsRef<Path>,
    mode: IoMode,
    pl: Pipeline,
    pipeline: impl FnOnce(&Recording<ParEmSimulator>) -> T,
) -> (T, EmRunCost) {
    let p = mach.p;
    let sim = ParEmSimulator::new(mach)
        .with_seed(seed)
        .with_file_backend(dir.as_ref())
        .with_io_mode(mode)
        .with_pipeline(pl);
    measure_par_sim(p, sim, pipeline)
}

/// [`measure_par`] against a caller-configured simulator; `p` is the
/// processor count used for the per-processor collapse.
pub fn measure_par_sim<T>(
    p: usize,
    sim: ParEmSimulator,
    pipeline: impl FnOnce(&Recording<ParEmSimulator>) -> T,
) -> (T, EmRunCost) {
    let rec = Recording::new(sim);
    let t0 = Instant::now();
    let out = pipeline(&rec);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let stages = rec.take_reports();
    (out, collapse(stages, p, wall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_algos::sort::cgm_sort;

    #[test]
    fn measure_collapses_pipeline_stages() {
        let items = crate::workloads::random_u64(2000, 9);
        let (out, cost) = measure_seq(machine(1, 1 << 14, 2, 256), 1, |rec| {
            cgm_sort(rec, 16, items.clone()).unwrap()
        });
        assert_eq!(out.len(), 2000);
        assert!(cost.io_ops > 0);
        assert!(cost.lambda >= 4);
        assert_eq!(cost.stages.len(), 1);
    }
}
