//! # em-bench
//!
//! Harness that regenerates the paper's evaluation:
//!
//! * `table1` binary — every row of Table 1: the classical sequential EM
//!   baseline vs the parallel EM algorithm obtained by simulation, as
//!   measured parallel-I/O-operation counts on the shared disk substrate,
//!   next to the paper-predicted complexity expressions.
//! * `figures` binary — parameter sweeps for the claims with no table of
//!   their own: the ×B blocking factor, the ×D disk parallelism, the
//!   p-processor scaling, the Lemma 2 bucket-balance tail, the Figure 2
//!   reorganization trace, λ-dependence, the Sibeyn–Kaufmann comparison,
//!   group-size (k) ablation and random-vs-deterministic placement.
//!
//! Shared here: seeded workload generators and measurement plumbing.

#![warn(missing_docs)]

pub mod measure;
pub mod report;
pub mod workloads;

pub use measure::{measure_par, measure_seq, EmRunCost};
pub use report::{print_table, write_bench_json, PhaseWallRow, Row};
