//! Criterion benchmarks for the simulation machinery itself: the Writing
//! Phase scatter, Algorithm 2's reorganization, and a full compound
//! superstep through the uniprocessor and multiprocessor simulators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use em_bsp::{BspProgram, Mailbox, Step};
use em_core::{
    scatter_messages, simulate_routing, BufferPool, EmMachine, MsgGeometry, OutMsg, ParEmSimulator,
    Placement, RoutingScratch, ScratchState, SeqEmSimulator,
};
use em_disk::{DiskArray, DiskConfig, TrackAllocator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scatter_and_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("scatter-routing");
    let d = 4;
    let b = 2048;
    let v = 32;
    let k = 4;
    let per_group_bytes = 64 * 1024;
    g.throughput(Throughput::Bytes((v / k * per_group_bytes) as u64));
    g.bench_function("scatter_plus_simulate_routing_512KiB", |bch| {
        bch.iter(|| {
            let mut alloc = TrackAllocator::new(d);
            let geom = MsgGeometry::allocate(&mut alloc, v, k, per_group_bytes * 2, d, b).unwrap();
            let mut disks = DiskArray::new_memory(DiskConfig::new(d, b).unwrap());
            let mut scratch = ScratchState::new(&geom);
            let mut rng = StdRng::seed_from_u64(1);
            for src_group in 0..v / k {
                let msgs: Vec<OutMsg> = (0..16)
                    .map(|i| OutMsg {
                        dst: ((src_group * 7 + i) % v) as u32,
                        src: (src_group * k) as u32,
                        seq: i as u32,
                        payload: vec![0u8; per_group_bytes / 16 - 16],
                    })
                    .collect();
                scatter_messages(
                    &mut disks,
                    &mut alloc,
                    &geom,
                    &mut scratch,
                    src_group,
                    msgs,
                    &mut rng,
                    Placement::Random,
                )
                .unwrap();
            }
            simulate_routing(
                &mut disks,
                &mut alloc,
                &geom,
                scratch,
                &mut RoutingScratch::new(),
                &mut BufferPool::new(),
                None,
            )
            .unwrap()
        });
    });
    g.finish();
}

/// All-to-all exchange: a single heavyweight compound superstep.
struct AllToAll {
    v: usize,
    words: usize,
}
impl BspProgram for AllToAll {
    type State = u64;
    type Msg = Vec<u64>;
    fn superstep(&self, step: usize, mb: &mut Mailbox<Vec<u64>>, state: &mut u64) -> Step {
        match step {
            0 => {
                for dst in 0..mb.nprocs() {
                    mb.send(dst, vec![mb.pid() as u64; self.words]);
                }
                Step::Continue
            }
            _ => {
                *state = mb.take_incoming().iter().flat_map(|e| &e.msg).sum();
                Step::Halt
            }
        }
    }
    fn max_state_bytes(&self) -> usize {
        8
    }
    fn max_comm_bytes(&self) -> usize {
        self.v * (32 + 8 * self.words) + 64
    }
}

fn bench_simulators(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulators");
    g.sample_size(20);
    let v = 32;
    let words = 512;
    let prog = AllToAll { v, words };
    let bytes = (v * v * words * 8) as u64;
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("seq_em_all_to_all_4MiB", |bch| {
        let sim = SeqEmSimulator::new(EmMachine::uniprocessor(1 << 16, 4, 2048, 1));
        bch.iter(|| sim.run(&prog, vec![0u64; v]).unwrap());
    });
    for p in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("par_em_all_to_all_4MiB", p), &p, |bch, &p| {
            let mach = EmMachine {
                p,
                m_bytes: 1 << 16,
                d: 4,
                b_bytes: 2048,
                g_io: 1,
                router: em_bsp::BspStarParams { p, g: 1.0, b: 2048, l: 1.0 },
            };
            let sim = ParEmSimulator::new(mach);
            bch.iter(|| sim.run(&prog, vec![0u64; v]).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scatter_and_routing, bench_simulators);
criterion_main!(benches);
