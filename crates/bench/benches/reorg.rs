//! Criterion microbenchmarks for the reorganization phase: Algorithm 2
//! (merge Step 1 + scatter Step 2) run end to end over a freshly
//! scattered message intermediate, with the per-bucket plan construction
//! serial vs fanned out over an attached [`ComputePool`] (DESIGN.md
//! §3.2.11). Counted parallel I/O is pool-invariant by construction
//! (asserted in the `figures reorg` sweep and `tests/reorg_modes.rs`);
//! this bench isolates the wall-clock cost of building the plans.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use em_core::{
    scatter_messages, simulate_routing, BufferPool, ComputePool, MsgGeometry, OutMsg, Placement,
    RoutingScratch, ScratchState,
};
use em_disk::{DiskArray, DiskConfig, TrackAllocator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xF16;
const V: usize = 64;
const K: usize = 4;
const D: usize = 8;
const B: usize = 512;
const GAMMA: usize = 8192;
const MSGS_PER_GROUP: u32 = 128;
const PAYLOAD: usize = 96;

type Scattered = (DiskArray, TrackAllocator, MsgGeometry, ScratchState);

/// Build a freshly scattered message intermediate — the input the
/// reorganization consumes (and destroys) on every run.
fn scattered() -> Scattered {
    let mut alloc = TrackAllocator::new(D);
    let geom = MsgGeometry::allocate(&mut alloc, V, K, GAMMA, D, B).unwrap();
    let mut disks = DiskArray::new_memory(DiskConfig::new(D, B).unwrap());
    let mut scratch = ScratchState::new(&geom);
    let mut rng = StdRng::seed_from_u64(SEED);
    for g in 0..V.div_ceil(K) {
        let msgs: Vec<OutMsg> = (0..MSGS_PER_GROUP)
            .map(|i| OutMsg {
                dst: (i * 5 + g as u32 * 3) % V as u32,
                src: (g * K) as u32,
                seq: i,
                payload: vec![i as u8; PAYLOAD],
            })
            .collect();
        let place = Placement::Random;
        scatter_messages(&mut disks, &mut alloc, &geom, &mut scratch, g, msgs, &mut rng, place)
            .unwrap();
    }
    (disks, alloc, geom, scratch)
}

fn bench_reorg(c: &mut Criterion) {
    let mut g = c.benchmark_group("reorg");
    g.throughput(Throughput::Bytes((V.div_ceil(K) * MSGS_PER_GROUP as usize * PAYLOAD) as u64));
    for workers in [0usize, 2, 4, 8] {
        let pool = (workers > 0).then(|| ComputePool::new(workers));
        let tag = if workers == 0 { "serial".to_string() } else { format!("pool-{workers}") };
        // Recycled across iterations, exactly as the simulators hold them
        // across supersteps.
        let mut routing = RoutingScratch::new();
        let mut bufs = BufferPool::new();
        g.bench_with_input(BenchmarkId::new("simulate_routing", &tag), &(), |b, ()| {
            b.iter_batched(
                scattered,
                |(mut disks, mut alloc, geom, scratch)| {
                    simulate_routing(
                        &mut disks,
                        &mut alloc,
                        &geom,
                        scratch,
                        &mut routing,
                        &mut bufs,
                        pool.as_ref(),
                    )
                    .unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reorg);
criterion_main!(benches);
