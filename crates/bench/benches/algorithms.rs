//! Criterion end-to-end benchmarks for representative Table 1 algorithms
//! on the external-memory simulator, plus the classical baselines for
//! direct wall-clock comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use em_bench::measure::machine;
use em_bench::workloads::{random_graph, random_u64};
use em_core::SeqEmSimulator;
use em_disk::{DiskArray, DiskConfig};

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort");
    g.sample_size(10);
    for n in [50_000usize, 100_000] {
        let items = random_u64(n, 5);
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::new("av_external_sort", n), &n, |b, _| {
            b.iter(|| {
                let mut disks = DiskArray::new_memory(DiskConfig::new(4, 2048).unwrap());
                em_baselines::ExternalSort { m_bytes: 1 << 18 }
                    .run(&mut disks, items.clone())
                    .unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("simulated_cgm_sort", n), &n, |b, _| {
            let sim = SeqEmSimulator::new(machine(1, 1 << 18, 4, 2048));
            b.iter(|| em_algos::sort::cgm_sort(&sim, 64, items.clone()).unwrap());
        });
    }
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(10);
    let n = 10_000;
    let edges = random_graph(n, 2 * n, 6);
    g.bench_function("simulated_cc_10k", |b| {
        let sim = SeqEmSimulator::new(machine(1, 1 << 18, 4, 2048));
        b.iter(|| em_algos::graph::cc::cgm_connected_components(&sim, 32, n, &edges).unwrap());
    });
    let succ = em_algos::graph::list_ranking::random_chain(n, 7);
    let w = vec![1u64; n];
    g.bench_function("simulated_list_rank_10k", |b| {
        let sim = SeqEmSimulator::new(machine(1, 1 << 18, 4, 2048));
        b.iter(|| em_algos::graph::list_ranking::cgm_list_rank(&sim, 32, &succ, &w).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_sort, bench_graph);
criterion_main!(benches);
