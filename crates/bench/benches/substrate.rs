//! Criterion microbenchmarks for the substrates: the codec, the disk
//! array (memory and file backends), the stripe engines' submit/join
//! ticket path, and the context store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use em_core::ContextStore;
use em_disk::{Block, DiskArray, DiskConfig, TrackAllocator};
use em_serial::{from_bytes, to_bytes};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial-codec");
    let v: Vec<(u64, u64)> = (0..4096).map(|i| (i, i * 7)).collect();
    let bytes = to_bytes(&v);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_vec_4096_pairs", |b| b.iter(|| to_bytes(std::hint::black_box(&v))));
    g.bench_function("decode_vec_4096_pairs", |b| {
        b.iter(|| from_bytes::<Vec<(u64, u64)>>(std::hint::black_box(&bytes)).unwrap())
    });
    g.finish();
}

fn bench_disk_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk-array");
    for d in [1usize, 4, 16] {
        let cfg = DiskConfig::new(d, 4096).unwrap();
        g.throughput(Throughput::Bytes((d * 4096) as u64));
        g.bench_with_input(BenchmarkId::new("memory_stripe_rw", d), &d, |b, &d| {
            let mut arr = DiskArray::new_memory(cfg);
            let writes: Vec<_> =
                (0..d).map(|i| (i, 0usize, Block::from_bytes_padded(&[i as u8], 4096))).collect();
            let addrs: Vec<_> = (0..d).map(|i| (i, 0usize)).collect();
            b.iter(|| {
                arr.write_stripe(std::hint::black_box(&writes)).unwrap();
                arr.read_stripe(std::hint::black_box(&addrs)).unwrap()
            });
        });
    }
    // File backend at D = 4.
    let dir = std::env::temp_dir().join(format!("em-bench-disk-{}", std::process::id()));
    let cfg = DiskConfig::new(4, 4096).unwrap();
    let mut arr = DiskArray::new_file(cfg, &dir).unwrap();
    let writes: Vec<_> =
        (0..4).map(|i| (i, 0usize, Block::from_bytes_padded(&[i as u8], 4096))).collect();
    let addrs: Vec<_> = (0..4).map(|i| (i, 0usize)).collect();
    g.throughput(Throughput::Bytes(4 * 4096));
    g.bench_function("file_stripe_rw_d4", |b| {
        b.iter(|| {
            arr.write_stripe(std::hint::black_box(&writes)).unwrap();
            arr.read_stripe(std::hint::black_box(&addrs)).unwrap()
        });
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// Submit/join ticket latency of one D=4 file stripe under each stripe
/// engine (DESIGN.md §3.2.10). Counted I/O is engine-invariant (asserted
/// elsewhere); this isolates the wall-clock cost of the engines' submit
/// and completion paths. The io_uring lane is skipped with a note when
/// the kernel ring is unavailable.
fn bench_stripe_engines(c: &mut Criterion) {
    use em_disk::EngineKind;
    let mut g = c.benchmark_group("stripe-engine");
    let engines: &[(EngineKind, &str)] = if em_disk::uring_available() {
        &[(EngineKind::Threaded, "threaded"), (EngineKind::Uring, "uring")]
    } else {
        eprintln!("stripe-engine: io_uring unavailable; benching the threaded engine only");
        &[(EngineKind::Threaded, "threaded")]
    };
    for &(engine, tag) in engines {
        let dir =
            std::env::temp_dir().join(format!("em-bench-engine-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = DiskConfig::new(4, 4096).unwrap().with_engine(engine);
        let mut arr = DiskArray::new_file(cfg, &dir).unwrap();
        let writes: Vec<_> =
            (0..4).map(|i| (i, 0usize, Block::from_bytes_padded(&[i as u8], 4096))).collect();
        let addrs: Vec<_> = (0..4).map(|i| (i, 0usize)).collect();
        arr.write_stripe(&writes).unwrap();
        g.throughput(Throughput::Bytes(2 * 4 * 4096));
        g.bench_with_input(BenchmarkId::new("submit_join_wr_rd_d4", tag), &(), |b, ()| {
            b.iter(|| {
                arr.submit_write_stripe(std::hint::black_box(&writes)).unwrap().join().unwrap();
                arr.submit_read_stripe(std::hint::black_box(&addrs)).unwrap().join().unwrap()
            });
        });
        drop(arr);
        std::fs::remove_dir_all(&dir).ok();
    }
    g.finish();
}

fn bench_context_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("context-store");
    let d = 4;
    let mu = 8192;
    let v = 64;
    let mut alloc = TrackAllocator::new(d);
    let store = ContextStore::allocate(&mut alloc, d, 2048, v, mu).unwrap();
    let mut disks = DiskArray::new_memory(DiskConfig::new(d, 2048).unwrap());
    let bufs: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8; mu - 64]).collect();
    store.write_group(&mut disks, 0, &bufs).unwrap();
    g.throughput(Throughput::Bytes((8 * mu) as u64));
    g.bench_function("write_group_8x8KiB", |b| {
        b.iter(|| store.write_group(&mut disks, 0, std::hint::black_box(&bufs)).unwrap());
    });
    g.bench_function("read_group_8x8KiB", |b| {
        b.iter(|| store.read_group(&mut disks, 0, 8).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_disk_array, bench_stripe_engines, bench_context_store);
criterion_main!(benches);
