//! Aggarwal–Vitter multiway external merge sort on `D` striped disks —
//! the classical `Θ((n/DB)·log(n/B))`-I/O baseline of Table 1's second
//! column.
//!
//! Structure:
//!
//! * **Run formation** — load `⌊M/rec⌋` records at a time, sort in
//!   memory, write the run striped round-robin over the `D` disks (full
//!   `D`-block stripes).
//! * **Merge passes** — `f`-way merges with `f = max(2, M/(D·B) − 1)`:
//!   each input run holds a `D`-block buffer; because runs are striped,
//!   refilling a run's buffer is a single parallel I/O of up to `D`
//!   blocks, and the output buffer also flushes `D` blocks per operation.
//!
//! Regions ping-pong between two preallocated areas, so disk space is
//! `O(n/D·B)` blocks per disk.

use crate::records::{pack_block, unpack_block, FixedRec};
use em_disk::{Block, DiskArray, DiskResult, IoStats, TrackAllocator};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Measured facts about one external sort.
#[derive(Debug, Clone)]
pub struct SortStats {
    /// Initial sorted runs.
    pub runs: usize,
    /// Merge passes performed.
    pub passes: usize,
    /// Fan-in used per merge.
    pub fanout: usize,
    /// Disk counters for the sort proper (input load excluded).
    pub io: IoStats,
}

/// Configuration: the machine memory available to the sorter.
#[derive(Debug, Clone, Copy)]
pub struct ExternalSort {
    /// `M` in bytes.
    pub m_bytes: usize,
}

/// A run: `blocks` blocks starting at global stripe index `start`, holding
/// `records` records.
#[derive(Debug, Clone, Copy)]
struct Run {
    start: usize,
    records: usize,
}

/// Global stripe addressing: block `g` of a region based at `base` lives
/// on disk `g mod D`, track `base + g div D`.
fn locate(base: usize, g: usize, d: usize) -> (usize, usize) {
    (g % d, base + g / d)
}

impl ExternalSort {
    /// Sort `items`, returning them sorted plus the measured statistics.
    /// The initial load of the input onto disk is excluded from the
    /// counters (the input is considered disk-resident, as in the model).
    pub fn run<T: FixedRec>(
        &self,
        disks: &mut DiskArray,
        items: Vec<T>,
    ) -> DiskResult<(Vec<T>, SortStats)> {
        let d = disks.num_disks();
        let bb = disks.block_bytes();
        let per_block = (bb / T::BYTES).max(1);
        let n = items.len();
        if n == 0 {
            return Ok((items, SortStats { runs: 0, passes: 0, fanout: 2, io: IoStats::new(d) }));
        }
        let total_blocks = n.div_ceil(per_block);
        let mut alloc = TrackAllocator::new(d);
        let region_tracks = total_blocks.div_ceil(d) + 1;
        let ping = alloc.reserve_region(region_tracks);
        let pong = alloc.reserve_region(region_tracks);

        // Run formation: write sorted runs into `ping`.
        let run_records = (self.m_bytes / T::BYTES).max(per_block);
        let mut runs: Vec<Run> = Vec::new();
        {
            let mut cursor = 0usize; // global block index in ping
            let mut rest = items;
            while !rest.is_empty() {
                let take = rest.len().min(run_records);
                let mut chunk: Vec<T> = rest.drain(..take).collect();
                chunk.sort_unstable();
                let start = cursor;
                let mut off = 0usize;
                let mut stripe: Vec<(usize, usize, Block)> = Vec::with_capacity(d);
                while off < chunk.len() {
                    let (payload, took) = pack_block(&chunk[off..], bb);
                    let (disk, track) = locate(ping, cursor, d);
                    stripe.push((disk, track, Block::from_vec(payload)));
                    cursor += 1;
                    off += took;
                    if stripe.len() == d {
                        disks.write_stripe(&stripe)?;
                        stripe.clear();
                    }
                }
                if !stripe.is_empty() {
                    disks.write_stripe(&stripe)?;
                }
                runs.push(Run { start, records: take });
            }
        }
        // Exclude nothing: run formation is part of the sort; but exclude
        // the (absent) initial load — items arrived in memory and the
        // first write above doubles as the run-formation write, exactly
        // the classical accounting.
        let stats_start = disks.stats().clone();
        let _ = stats_start; // counters started at zero for this sort
        let fanout = (self.m_bytes / (d * bb)).saturating_sub(1).max(2);
        let initial_runs = runs.len();

        // Merge passes, ping-pong between regions.
        let mut src_base = ping;
        let mut dst_base = pong;
        let mut passes = 0usize;
        while runs.len() > 1 {
            passes += 1;
            let mut next_runs: Vec<Run> = Vec::new();
            let mut out_cursor = 0usize;
            for batch in runs.chunks(fanout) {
                let merged = self.merge_batch::<T>(
                    disks,
                    batch,
                    src_base,
                    dst_base,
                    &mut out_cursor,
                    d,
                    bb,
                    per_block,
                )?;
                next_runs.push(merged);
            }
            runs = next_runs;
            std::mem::swap(&mut src_base, &mut dst_base);
        }

        let io = disks.stats().clone();

        // Read the final run back (outside the measured window).
        let run = runs[0];
        let mut out: Vec<T> = Vec::with_capacity(run.records);
        let mut remaining = run.records;
        let mut g = run.start;
        while remaining > 0 {
            let width = d.min(remaining.div_ceil(per_block));
            let addrs: Vec<(usize, usize)> =
                (0..width).map(|i| locate(src_base, g + i, d)).collect();
            for block in disks.read_stripe(&addrs)? {
                let count = remaining.min(per_block);
                out.extend(unpack_block::<T>(block.as_bytes(), count));
                remaining -= count;
            }
            g += width;
        }

        Ok((out, SortStats { runs: initial_runs, passes, fanout, io }))
    }

    /// Merge one batch of runs from `src_base` into a single run at
    /// `dst_base`/`out_cursor`.
    #[allow(clippy::too_many_arguments)]
    fn merge_batch<T: FixedRec>(
        &self,
        disks: &mut DiskArray,
        batch: &[Run],
        src_base: usize,
        dst_base: usize,
        out_cursor: &mut usize,
        d: usize,
        bb: usize,
        per_block: usize,
    ) -> DiskResult<Run> {
        struct Cursor<T> {
            buf: std::collections::VecDeque<T>,
            next_block: usize,
            blocks_left: usize,
            /// Records not yet read from disk.
            disk_records: usize,
        }
        let mut cursors: Vec<Cursor<T>> = batch
            .iter()
            .map(|r| Cursor {
                buf: Default::default(),
                next_block: r.start,
                blocks_left: r.records.div_ceil(per_block),
                disk_records: r.records,
            })
            .collect();

        // Refill a run's buffer with up to D consecutive blocks (one
        // parallel I/O — consecutive stripe indices hit distinct disks).
        let refill = |disks: &mut DiskArray, c: &mut Cursor<T>| -> DiskResult<()> {
            if c.blocks_left == 0 {
                return Ok(());
            }
            let width = d.min(c.blocks_left);
            let addrs: Vec<(usize, usize)> =
                (0..width).map(|i| locate(src_base, c.next_block + i, d)).collect();
            for block in disks.read_stripe(&addrs)? {
                let count = c.disk_records.min(per_block);
                for item in unpack_block::<T>(block.as_bytes(), count) {
                    c.buf.push_back(item);
                }
                c.disk_records -= count;
            }
            c.next_block += width;
            c.blocks_left -= width;
            Ok(())
        };

        let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::new();
        for (i, c) in cursors.iter_mut().enumerate() {
            refill(disks, c)?;
            if let Some(x) = c.buf.pop_front() {
                heap.push(Reverse((x, i)));
            }
        }

        let start = *out_cursor;
        let total_records: usize = batch.iter().map(|r| r.records).sum();
        let mut out_buf: Vec<T> = Vec::with_capacity(d * per_block);
        let mut written = 0usize;
        let flush =
            |disks: &mut DiskArray, out_buf: &mut Vec<T>, cursor: &mut usize| -> DiskResult<()> {
                let mut off = 0;
                let mut stripe: Vec<(usize, usize, Block)> = Vec::with_capacity(d);
                while off < out_buf.len() {
                    let (payload, took) = pack_block(&out_buf[off..], bb);
                    let (disk, track) = locate(dst_base, *cursor, d);
                    stripe.push((disk, track, Block::from_vec(payload)));
                    *cursor += 1;
                    off += took;
                    if stripe.len() == d {
                        disks.write_stripe(&stripe)?;
                        stripe.clear();
                    }
                }
                if !stripe.is_empty() {
                    disks.write_stripe(&stripe)?;
                }
                out_buf.clear();
                Ok(())
            };

        while let Some(Reverse((x, i))) = heap.pop() {
            out_buf.push(x);
            written += 1;
            if out_buf.len() == d * per_block && written < total_records {
                flush(disks, &mut out_buf, out_cursor)?;
            }
            let c = &mut cursors[i];
            if c.buf.is_empty() {
                refill(disks, c)?;
            }
            if let Some(next) = c.buf.pop_front() {
                heap.push(Reverse((next, i)));
            }
        }
        flush(disks, &mut out_buf, out_cursor)?;
        Ok(Run { start, records: total_records })
    }
}

/// Convenience wrapper with a fresh in-memory array.
pub fn external_sort<T: FixedRec>(
    m_bytes: usize,
    d: usize,
    block_bytes: usize,
    items: Vec<T>,
) -> DiskResult<(Vec<T>, SortStats)> {
    let cfg = em_disk::DiskConfig::new(d, block_bytes)?;
    let mut disks = DiskArray::new_memory(cfg);
    ExternalSort { m_bytes }.run(&mut disks, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_u64(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn sorts_correctly_multiple_passes() {
        let items = random_u64(4000, 30);
        let mut want = items.clone();
        want.sort_unstable();
        // Tiny memory forces many runs and ≥ 2 merge passes.
        let (got, stats) = external_sort(512, 2, 64, items).unwrap();
        assert_eq!(got, want);
        assert!(stats.runs > 10, "runs = {}", stats.runs);
        assert!(stats.passes >= 2, "passes = {}", stats.passes);
        assert!(stats.io.parallel_ops > 0);
    }

    #[test]
    fn single_run_fast_path() {
        let items = random_u64(100, 31);
        let mut want = items.clone();
        want.sort_unstable();
        let (got, stats) = external_sort(1 << 20, 4, 256, items).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn more_disks_mean_fewer_ops() {
        let items = random_u64(8000, 32);
        let (_, s1) = external_sort(2048, 1, 64, items.clone()).unwrap();
        let (_, s4) = external_sort(2048, 4, 64, items).unwrap();
        let ratio = s1.io.parallel_ops as f64 / s4.io.parallel_ops as f64;
        assert!(
            ratio > 2.0,
            "expected ≳4x fewer ops with 4 disks, got {ratio:.2} ({} vs {})",
            s1.io.parallel_ops,
            s4.io.parallel_ops
        );
    }

    #[test]
    fn duplicates_and_tuples() {
        let mut rng = StdRng::seed_from_u64(33);
        let items: Vec<(u64, u64)> = (0..1500).map(|_| (rng.gen_range(0..10), rng.gen())).collect();
        let mut want = items.clone();
        want.sort_unstable();
        let (got, _) = external_sort(1024, 3, 128, items).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_tiny() {
        let (got, stats) = external_sort::<u64>(1024, 2, 64, vec![]).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats.io.parallel_ops, 0);
        let (got, _) = external_sort(1024, 2, 64, vec![5u64, 3]).unwrap();
        assert_eq!(got, vec![3, 5]);
    }

    #[test]
    fn utilization_is_high() {
        let items = random_u64(16_000, 34);
        let (_, stats) = external_sort(4096, 4, 128, items).unwrap();
        assert!(
            stats.io.utilization() > 0.8,
            "striped merge should keep the disks busy: {:.2}",
            stats.io.utilization()
        );
    }
}
