//! Fixed-size record bound for the external-memory baselines.
//!
//! The classical EM algorithms pack records densely into `B`-byte blocks,
//! which requires every record to have the same encoded size.

use em_serial::Serial;

/// A record with a value-independent encoded size.
pub trait FixedRec: Serial + Clone + Send + Ord + std::fmt::Debug + 'static {
    /// Encoded size in bytes of every value of the type.
    const BYTES: usize;
}

impl FixedRec for u64 {
    const BYTES: usize = 8;
}

impl FixedRec for i64 {
    const BYTES: usize = 8;
}

impl FixedRec for u32 {
    const BYTES: usize = 4;
}

impl FixedRec for (u64, u64) {
    const BYTES: usize = 16;
}

impl FixedRec for (u64, u64, u64) {
    const BYTES: usize = 24;
}

impl FixedRec for (i64, i64) {
    const BYTES: usize = 16;
}

/// Pack `items[from..]` into a zero-padded block payload of `block_bytes`,
/// returning how many records were consumed.
pub fn pack_block<T: FixedRec>(items: &[T], block_bytes: usize) -> (Vec<u8>, usize) {
    let per_block = block_bytes / T::BYTES;
    let take = items.len().min(per_block);
    let mut buf = Vec::with_capacity(block_bytes);
    for item in &items[..take] {
        item.encode(&mut buf);
    }
    buf.resize(block_bytes, 0);
    (buf, take)
}

/// Decode `count` records from a block payload.
pub fn unpack_block<T: FixedRec>(bytes: &[u8], count: usize) -> Vec<T> {
    let mut r = em_serial::Reader::new(bytes);
    (0..count).map(|_| T::decode(&mut r).expect("packed records decode")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let items: Vec<u64> = (0..10).collect();
        let (buf, took) = pack_block(&items, 64);
        assert_eq!(took, 8); // 64 / 8
        assert_eq!(buf.len(), 64);
        assert_eq!(unpack_block::<u64>(&buf, 8), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn partial_block() {
        let items: Vec<(u64, u64)> = vec![(1, 2), (3, 4)];
        let (buf, took) = pack_block(&items, 64);
        assert_eq!(took, 2);
        assert_eq!(unpack_block::<(u64, u64)>(&buf, 2), items);
    }
}
