//! Unblocked baselines: one record per parallel I/O operation.
//!
//! These quantify the introduction's claim that without blocking "the
//! runtime can typically be up to a factor of 10³ (the blocking factor)
//! too high": every record access reads or writes a whole track to touch
//! one record, and only one disk is used per operation.

use crate::records::{pack_block, unpack_block, FixedRec};
use em_disk::{Block, DiskArray, DiskResult, IoStats, TrackAllocator};

/// An unblocked record store: record `i` occupies the block-aligned slot
/// `i` on disk `i mod D` — accessing it moves a whole `B`-byte track.
pub struct NaiveStore {
    base: usize,
    d: usize,
}

impl NaiveStore {
    /// Allocate slots for `n` records.
    pub fn allocate(alloc: &mut TrackAllocator, n: usize, d: usize) -> Self {
        let base = alloc.reserve_region(n.div_ceil(d));
        NaiveStore { base, d }
    }

    fn locate(&self, i: usize) -> (usize, usize) {
        (i % self.d, self.base + i / self.d)
    }

    /// Write record `i` (one full parallel I/O for one record).
    pub fn write<T: FixedRec>(&self, disks: &mut DiskArray, i: usize, value: &T) -> DiskResult<()> {
        let (disk, track) = self.locate(i);
        let (payload, _) = pack_block(std::slice::from_ref(value), disks.block_bytes());
        disks.write_block(disk, track, Block::from_vec(payload))
    }

    /// Read record `i` (one full parallel I/O for one record).
    pub fn read<T: FixedRec>(&self, disks: &mut DiskArray, i: usize) -> DiskResult<T> {
        let (disk, track) = self.locate(i);
        let block = disks.read_block(disk, track)?;
        Ok(unpack_block::<T>(block.as_bytes(), 1).pop().expect("one record"))
    }
}

/// Unblocked permutation: read each record, write it to its destination —
/// `2n` parallel I/O operations regardless of `B` and `D`.
pub fn naive_permute<T: FixedRec>(
    disks: &mut DiskArray,
    items: Vec<T>,
    perm: &[usize],
) -> DiskResult<(Vec<T>, IoStats)> {
    assert_eq!(items.len(), perm.len());
    let n = items.len();
    let d = disks.num_disks();
    let mut alloc = TrackAllocator::new(d);
    let src = NaiveStore::allocate(&mut alloc, n, d);
    let dst = NaiveStore::allocate(&mut alloc, n, d);
    for (i, item) in items.iter().enumerate() {
        src.write(disks, i, item)?;
    }
    disks.reset_stats(); // input load excluded, as for the blocked variants
    for (i, &to) in perm.iter().enumerate() {
        let value: T = src.read(disks, i)?;
        dst.write(disks, to, &value)?;
    }
    let io = disks.stats().clone();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(dst.read(disks, i)?);
    }
    Ok((out, io))
}

/// Unblocked merge sort: binary merges with record-at-a-time disk access —
/// `Θ(n·log₂(n/M))` parallel I/O operations.
pub fn naive_sort<T: FixedRec>(
    disks: &mut DiskArray,
    m_bytes: usize,
    items: Vec<T>,
) -> DiskResult<(Vec<T>, IoStats)> {
    let n = items.len();
    let d = disks.num_disks();
    let mut alloc = TrackAllocator::new(d);
    let ping = NaiveStore::allocate(&mut alloc, n, d);
    let pong = NaiveStore::allocate(&mut alloc, n, d);
    if n == 0 {
        return Ok((items, IoStats::new(d)));
    }

    // In-memory run formation (same M as the blocked sorter), then
    // record-at-a-time binary merge passes.
    let run_len = (m_bytes / T::BYTES).max(1);
    let mut rest = items;
    let mut idx = 0;
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, len)
    while !rest.is_empty() {
        let take = rest.len().min(run_len);
        let mut chunk: Vec<T> = rest.drain(..take).collect();
        chunk.sort_unstable();
        for item in &chunk {
            ping.write(disks, idx, item)?;
            idx += 1;
        }
        runs.push((idx - take, take));
    }
    disks.reset_stats();

    let (mut src, mut dst) = (ping, pong);
    while runs.len() > 1 {
        let mut next: Vec<(usize, usize)> = Vec::new();
        for pair in runs.chunks(2) {
            if pair.len() == 1 {
                // Copy the odd run over.
                let (s, len) = pair[0];
                for i in 0..len {
                    let v: T = src.read(disks, s + i)?;
                    dst.write(disks, s + i, &v)?;
                }
                next.push(pair[0]);
                continue;
            }
            let (s1, l1) = pair[0];
            let (s2, l2) = pair[1];
            let (mut i, mut j, mut o) = (0, 0, s1);
            let mut a: Option<T> = if l1 > 0 { Some(src.read(disks, s1)?) } else { None };
            let mut b: Option<T> = if l2 > 0 { Some(src.read(disks, s2)?) } else { None };
            while a.is_some() || b.is_some() {
                let take_a = match (&a, &b) {
                    (Some(x), Some(y)) => x <= y,
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_a {
                    dst.write(disks, o, a.as_ref().expect("a present"))?;
                    i += 1;
                    a = if i < l1 { Some(src.read(disks, s1 + i)?) } else { None };
                } else {
                    dst.write(disks, o, b.as_ref().expect("b present"))?;
                    j += 1;
                    b = if j < l2 { Some(src.read(disks, s2 + j)?) } else { None };
                }
                o += 1;
            }
            next.push((s1, l1 + l2));
        }
        runs = next;
        std::mem::swap(&mut src, &mut dst);
    }
    let io = disks.stats().clone();
    let (start, len) = runs[0];
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        out.push(src.read(disks, start + i)?);
    }
    Ok((out, io))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_disk::DiskConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn naive_permute_is_correct_and_expensive() {
        let n = 200;
        let items: Vec<u64> = (0..n as u64).collect();
        let perm: Vec<usize> = (0..n).rev().collect();
        let mut disks = DiskArray::new_memory(DiskConfig::new(4, 256).unwrap());
        let (got, io) = naive_permute(&mut disks, items, &perm).unwrap();
        assert_eq!(got, (0..n as u64).rev().collect::<Vec<_>>());
        // 2 ops per record, no blocking, no parallel disks.
        assert_eq!(io.parallel_ops, 2 * n as u64);
        assert!(io.utilization() <= 0.26);
    }

    #[test]
    fn naive_sort_is_correct() {
        let mut rng = StdRng::seed_from_u64(41);
        let items: Vec<u64> = (0..500).map(|_| rng.gen_range(0..10_000)).collect();
        let mut want = items.clone();
        want.sort_unstable();
        let mut disks = DiskArray::new_memory(DiskConfig::new(2, 64).unwrap());
        let (got, io) = naive_sort(&mut disks, 256, items).unwrap();
        assert_eq!(got, want);
        // ~2n I/Os per pass, log2(500/32) ≈ 4 passes.
        assert!(io.parallel_ops > 2000, "ops = {}", io.parallel_ops);
    }

    #[test]
    fn naive_sort_empty() {
        let mut disks = DiskArray::new_memory(DiskConfig::new(2, 64).unwrap());
        let (got, io) = naive_sort::<u64>(&mut disks, 256, vec![]).unwrap();
        assert!(got.is_empty());
        assert_eq!(io.parallel_ops, 0);
    }
}
