//! External-memory matrix transpose — Table 1, Group A, column 2 — via
//! destination sort (the general `Θ((n/DB)·log` bound; the special-case
//! tile algorithms of Aggarwal–Vitter improve constants, not the shape).

use crate::external_permute::external_permute;
use crate::external_sort::SortStats;
use crate::records::FixedRec;
use em_disk::{DiskArray, DiskResult};

/// Transpose an `r × c` matrix stored row-major.
pub fn external_transpose<T: FixedRec>(
    disks: &mut DiskArray,
    m_bytes: usize,
    r: usize,
    c: usize,
    data: Vec<T>,
) -> DiskResult<(Vec<T>, SortStats)>
where
    (u64, T): FixedRec,
{
    assert_eq!(data.len(), r * c, "matrix shape");
    let perm: Vec<usize> = (0..r * c)
        .map(|idx| {
            let (i, j) = (idx / c, idx % c);
            j * r + i
        })
        .collect();
    external_permute(disks, m_bytes, data, &perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_disk::DiskConfig;

    #[test]
    fn transpose_matches_direct_computation() {
        let (r, c) = (20, 37);
        let data: Vec<u64> = (0..(r * c) as u64).collect();
        let mut want = vec![0u64; r * c];
        for i in 0..r {
            for j in 0..c {
                want[j * r + i] = data[i * c + j];
            }
        }
        let mut disks = DiskArray::new_memory(DiskConfig::new(2, 64).unwrap());
        let (got, _) = external_transpose(&mut disks, 512, r, c, data).unwrap();
        assert_eq!(got, want);
    }
}
