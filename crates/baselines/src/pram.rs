//! PRAM-simulation baseline (Chiang et al. 1995): execute each PRAM step
//! by *sorting* the memory requests so they can be served with a scan —
//! one external-sort batch per PRAM step.
//!
//! The paper's Section 2.1 observes this is only I/O-optimal for
//! "geometrically decreasing size" computations; list ranking by pointer
//! jumping keeps the full `n` active for all `log n` steps, so the PRAM
//! route pays `Θ(log n · sort(n))` I/Os where the paper's simulation pays
//! `O(λ · n/(DB))`. We implement exactly that workload to regenerate the
//! comparison.

use crate::external_sort::ExternalSort;
use crate::records::FixedRec;
use em_disk::{DiskArray, DiskResult, IoStats};

/// Marker for chain tails (matches `em_algos::graph::list_ranking::NIL`).
pub const NIL: u64 = u64::MAX;

impl FixedRec for (u64, u64, u64, u64) {
    const BYTES: usize = 32;
}

/// List ranking via PRAM-step simulation: every pointer-jumping step is
/// realized as two external sorts (gather successor values, scatter back).
/// Returns the ranks (weight sums to the tail, inclusive, unit weights)
/// and the accumulated I/O counters.
pub fn pram_list_rank(
    disks: &mut DiskArray,
    m_bytes: usize,
    succ: &[u64],
) -> DiskResult<(Vec<u64>, IoStats, usize)> {
    let n = succ.len();
    let sorter = ExternalSort { m_bytes };
    // Node records: (id, ptr, rank).
    let mut nodes: Vec<(u64, u64, u64)> =
        succ.iter().enumerate().map(|(i, &s)| (i as u64, s, 1)).collect();
    let mut io = IoStats::new(disks.num_disks());
    let mut steps = 0usize;

    loop {
        let active = nodes.iter().any(|&(_, p, _)| p != NIL);
        if !active {
            break;
        }
        steps += 1;
        // PRAM step: rank[x] += rank[ptr[x]]; ptr[x] = ptr[ptr[x]].
        // EM realization: sort read-requests by target, scan against the
        // id-sorted node table, sort replies back by requester.
        // Requests: (target, requester, _, _).
        let requests: Vec<(u64, u64, u64, u64)> =
            nodes.iter().filter(|&&(_, p, _)| p != NIL).map(|&(x, p, _)| (p, x, 0, 0)).collect();
        let (sorted_req, s1) = sorter.run(disks, requests)?;
        io.merge(&s1.io);

        // Scan: nodes are kept id-sorted, so a merge-scan answers all
        // requests (counts as one linear pass: n/DB reads + writes).
        let scan_blocks = (n * 24).div_ceil(disks.block_bytes()) as u64;
        let scan_ops = 2 * scan_blocks.div_ceil(disks.num_disks() as u64);
        io.parallel_ops += scan_ops;
        io.blocks_read += scan_blocks;
        io.blocks_written += scan_blocks;
        let mut replies: Vec<(u64, u64, u64, u64)> = Vec::with_capacity(sorted_req.len());
        for (target, requester, _, _) in sorted_req {
            let (_, p, r) = nodes[target as usize];
            replies.push((requester, p, r, 0));
        }

        // Sort replies back into requester order.
        let (sorted_rep, s2) = sorter.run(disks, replies)?;
        io.merge(&s2.io);
        for (requester, p, r, _) in sorted_rep {
            let node = &mut nodes[requester as usize];
            node.2 = node.2.wrapping_add(r);
            node.1 = p;
        }
    }

    Ok((nodes.into_iter().map(|(_, _, r)| r).collect(), io, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_disk::DiskConfig;

    #[test]
    fn pram_list_rank_is_correct() {
        // 0 -> 1 -> 2 -> 3 -> 4
        let succ = vec![1, 2, 3, 4, NIL];
        let mut disks = DiskArray::new_memory(DiskConfig::new(2, 64).unwrap());
        let (ranks, io, steps) = pram_list_rank(&mut disks, 256, &succ).unwrap();
        assert_eq!(ranks, vec![5, 4, 3, 2, 1]);
        assert!(steps >= 3, "log2(5) rounds, got {steps}");
        assert!(io.parallel_ops > 0);
    }

    #[test]
    fn pram_pays_sort_per_step() {
        // The I/O count grows ~log n times the per-sort cost.
        let n = 512;
        let succ: Vec<u64> =
            (0..n as u64).map(|i| if i + 1 < n as u64 { i + 1 } else { NIL }).collect();
        let mut disks = DiskArray::new_memory(DiskConfig::new(2, 64).unwrap());
        let (ranks, io, steps) = pram_list_rank(&mut disks, 1024, &succ).unwrap();
        assert_eq!(ranks[0], n as u64);
        assert!(steps >= 9); // log2(512)
                             // Far more than a couple of linear passes over the data.
        let linear_pass = (n as u64 * 32) / 64 / 2;
        assert!(io.parallel_ops > 10 * linear_pass, "ops = {}", io.parallel_ops);
    }
}
