//! # em-baselines
//!
//! The classical external-memory comparators from the second column of the
//! paper's Table 1, implemented on the same [`em_disk::DiskArray`]
//! substrate as the simulation so that counted parallel I/O operations are
//! directly comparable:
//!
//! * [`external_sort()`] — Aggarwal–Vitter multiway merge sort with
//!   `D`-striped runs: `Θ((n/DB)·log_{M/DB}(n/B))` parallel I/Os.
//! * [`external_permute()`] / [`external_transpose()`] — permutation routing
//!   and matrix transpose by destination sort.
//! * [`naive`] — unblocked record-at-a-time variants exhibiting the ×B
//!   blocking-factor penalty the paper's introduction quantifies.
//! * [`pram`] — Chiang-et-al.-style PRAM-step simulation (one external
//!   sort batch per PRAM step), the prior simulation approach the paper
//!   improves on for problems without geometrically decreasing size.
//! * [`sibeyn`] — a Sibeyn–Kaufmann-style BSP-to-EM runner: one virtual
//!   processor at a time, a `v × v` message matrix, a single disk and no
//!   blocking adaptation (the concurrent-work comparator of Section 2.1).

#![warn(missing_docs)]

pub mod external_permute;
pub mod external_sort;
pub mod external_transpose;
pub mod naive;
pub mod pram;
pub mod records;
pub mod sibeyn;

pub use external_permute::external_permute;
pub use external_sort::{external_sort, ExternalSort, SortStats};
pub use external_transpose::external_transpose;
pub use records::FixedRec;
pub use sibeyn::SibeynRunner;
