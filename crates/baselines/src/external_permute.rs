//! External-memory permutation — Table 1, Group A, column 2.
//!
//! The classical blocked approach routes records by *sorting on the
//! destination index*, giving `O((n/DB)·log_{M/DB}(n/B))` parallel I/Os
//! (the min with `n/D` direct placements is taken by
//! [`crate::naive::naive_permute`], the unblocked alternative).

use crate::external_sort::{ExternalSort, SortStats};
use crate::records::FixedRec;
use em_disk::{DiskArray, DiskResult};

/// Permute `items` so that the output at position `perm[i]` is `items[i]`,
/// by external sort on `(destination, record)` pairs.
pub fn external_permute<T: FixedRec>(
    disks: &mut DiskArray,
    m_bytes: usize,
    items: Vec<T>,
    perm: &[usize],
) -> DiskResult<(Vec<T>, SortStats)>
where
    (u64, T): FixedRec,
{
    assert_eq!(items.len(), perm.len(), "permutation arity");
    let tagged: Vec<(u64, T)> = perm.iter().map(|&d| d as u64).zip(items).collect();
    let (sorted, stats) = ExternalSort { m_bytes }.run(disks, tagged)?;
    Ok((sorted.into_iter().map(|(_, x)| x).collect(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_disk::DiskConfig;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn routes_records_to_destinations() {
        let mut rng = StdRng::seed_from_u64(40);
        let n = 3000;
        let items: Vec<u64> = (0..n as u64).map(|x| x * 7).collect();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let mut disks = DiskArray::new_memory(DiskConfig::new(2, 64).unwrap());
        let (got, stats) = external_permute(&mut disks, 1024, items.clone(), &perm).unwrap();
        let mut want = vec![0u64; n];
        for (i, &d) in perm.iter().enumerate() {
            want[d] = items[i];
        }
        assert_eq!(got, want);
        assert!(stats.io.parallel_ops > 0);
    }
}
