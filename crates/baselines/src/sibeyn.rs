//! A Sibeyn–Kaufmann-style BSP-to-EM runner (Section 2.1's concurrent
//! work): simulate **one virtual processor at a time** on a **single
//! disk**, keeping "the context and generated messages in a `v × v` array
//! on disk" — cell `(i, j)` holds the message bytes from virtual processor
//! `i` to `j`. There is no blocking adaptation (a cell occupies its own
//! blocks regardless of fill) and no parallel-disk usage; comparing its
//! counted I/O against the paper's simulation regenerates the paper's
//! qualitative claim.
//!
//! Results are identical to `em_bsp::run_sequential` — correctness is not
//! the difference, cost is.

use em_bsp::{
    BspProgram, CommLedger, Envelope, ExecError, Mailbox, RunResult, Step, SuperstepComm,
};
use em_disk::{Block, DiskArray, DiskConfig, IoStats};
use em_serial::{from_bytes, to_bytes, Serial};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct SibeynRunner {
    /// Track size of the single disk.
    pub block_bytes: usize,
    /// Superstep guard.
    pub max_supersteps: usize,
}

impl Default for SibeynRunner {
    fn default() -> Self {
        SibeynRunner { block_bytes: 512, max_supersteps: em_bsp::DEFAULT_MAX_SUPERSTEPS }
    }
}

impl SibeynRunner {
    /// Run `prog` one virtual processor at a time against a single-disk
    /// `v × v` message matrix; returns the result plus the I/O counters.
    pub fn run<P: BspProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<(RunResult<P::State>, IoStats), ExecError> {
        let v = states.len();
        if v == 0 {
            return Err("no virtual processors".into());
        }
        let bb = self.block_bytes;
        let mu = prog.max_state_bytes() + 4;
        let gamma = prog.max_comm_bytes() + 4;
        let ctx_blocks = mu.div_ceil(bb);
        let cell_blocks = gamma.div_ceil(bb);

        let mut disks = DiskArray::new_memory(DiskConfig::new(1, bb)?);
        // Layout on the single disk: contexts, then two v×v matrices
        // (ping/pong so messages written this superstep are read next).
        let ctx_base = 0usize;
        let mat_base = [ctx_base + v * ctx_blocks, ctx_base + v * ctx_blocks + v * v * cell_blocks];
        let cell_track = |mat: usize, i: usize, j: usize| mat_base[mat] + (i * v + j) * cell_blocks;

        // Write a byte region (length-prefixed) at consecutive tracks.
        let write_region =
            |disks: &mut DiskArray, track: usize, cap_blocks: usize, bytes: &[u8]| {
                let mut framed = Vec::with_capacity(4 + bytes.len());
                framed.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                framed.extend_from_slice(bytes);
                assert!(framed.len() <= cap_blocks * bb, "region overflow");
                for (k, chunk) in framed.chunks(bb).enumerate() {
                    disks.write_block(0, track + k, Block::from_bytes_padded(chunk, bb))?;
                }
                em_disk::DiskResult::Ok(())
            };
        let read_region = |disks: &mut DiskArray, track: usize, cap_blocks: usize| {
            let first = disks.read_block(0, track)?;
            let len =
                u32::from_le_bytes(first.as_bytes()[..4].try_into().expect("prefix")) as usize;
            let mut bytes = first.as_bytes()[4..].to_vec();
            let mut k = 1;
            while bytes.len() < len {
                assert!(k < cap_blocks, "corrupt region length");
                bytes.extend_from_slice(disks.read_block(0, track + k)?.as_bytes());
                k += 1;
            }
            bytes.truncate(len);
            em_disk::DiskResult::Ok(bytes)
        };

        // Load initial contexts (excluded from the measured window).
        for (j, state) in states.iter().enumerate() {
            write_region(&mut disks, ctx_base + j * ctx_blocks, ctx_blocks, &to_bytes(state))?;
        }
        drop(states);
        disks.reset_stats();

        // In-memory cell fill table (metadata): bytes per cell, per matrix.
        let mut fill = vec![vec![0usize; v * v]; 2];
        let mut ledger = CommLedger::default();

        for step in 0..self.max_supersteps {
            let cur = step % 2;
            let nxt = 1 - cur;
            let mut all_halted = true;
            let mut any_msgs = false;
            let mut comm = SuperstepComm::default();

            for j in 0..v {
                // Fetch context.
                let ctx_bytes = read_region(&mut disks, ctx_base + j * ctx_blocks, ctx_blocks)?;
                let mut state: P::State = from_bytes(&ctx_bytes).map_err(Box::new)?;

                // Fetch column j of the current matrix.
                let mut inbox: Vec<(usize, u64, Envelope<P::Msg>)> = Vec::new();
                for i in 0..v {
                    if fill[cur][i * v + j] == 0 {
                        continue;
                    }
                    let bytes = read_region(&mut disks, cell_track(cur, i, j), cell_blocks)?;
                    fill[cur][i * v + j] = 0;
                    let mut r = em_serial::Reader::new(&bytes);
                    while !r.is_empty() {
                        let seq = u32::decode(&mut r).map_err(Box::new)?;
                        let len = u32::decode(&mut r).map_err(Box::new)? as usize;
                        let payload = r.take(len).map_err(Box::new)?;
                        let msg: P::Msg = from_bytes(payload).map_err(Box::new)?;
                        inbox.push((i, seq as u64, Envelope { src: i, msg }));
                    }
                }
                inbox.sort_by_key(|&(src, seq, _)| (src, seq));
                let recv_bytes: u64 =
                    inbox.iter().map(|(_, _, e)| e.msg.encoded_len() as u64).sum();
                let incoming = inbox.into_iter().map(|(_, _, e)| e).collect();

                let mut mb = Mailbox::new(j, v, incoming);
                let status = prog.superstep(step, &mut mb, &mut state);
                let (outgoing, msgs, bytes, work) = mb.into_outgoing();
                if status == Step::Continue {
                    all_halted = false;
                }
                comm.msgs += msgs;
                comm.bytes += bytes;
                comm.h_bytes = comm.h_bytes.max(bytes).max(recv_bytes);
                comm.h_msgs = comm.h_msgs.max(msgs);
                comm.w_comp = comm.w_comp.max(work);

                // Write per-destination cells into the next matrix.
                let mut per_dst: Vec<Vec<u8>> = vec![Vec::new(); v];
                for (seq, (dst, msg)) in outgoing.into_iter().enumerate() {
                    if dst >= v {
                        return Err(format!("invalid destination {dst}").into());
                    }
                    any_msgs = true;
                    let payload = to_bytes(&msg);
                    per_dst[dst].extend_from_slice(&(seq as u32).to_le_bytes());
                    per_dst[dst].extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    per_dst[dst].extend_from_slice(&payload);
                }
                for (dst, bytes) in per_dst.into_iter().enumerate() {
                    if bytes.is_empty() {
                        continue;
                    }
                    if bytes.len() + 4 > cell_blocks * bb {
                        return Err(format!("cell ({j},{dst}) overflows γ = {gamma} bytes").into());
                    }
                    write_region(&mut disks, cell_track(nxt, j, dst), cell_blocks, &bytes)?;
                    fill[nxt][j * v + dst] = bytes.len();
                }

                // Write the context back.
                write_region(&mut disks, ctx_base + j * ctx_blocks, ctx_blocks, &to_bytes(&state))?;
            }

            ledger.push(comm);
            if all_halted && !any_msgs {
                let mut final_states = Vec::with_capacity(v);
                for j in 0..v {
                    let bytes = read_region(&mut disks, ctx_base + j * ctx_blocks, ctx_blocks)?;
                    final_states.push(from_bytes::<P::State>(&bytes).map_err(Box::new)?);
                }
                let io = disks.stats().clone();
                return Ok((RunResult { states: final_states, ledger }, io));
            }
        }
        Err(format!("did not halt within {} supersteps", self.max_supersteps).into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_bsp::run_sequential;

    struct AllToAll;
    impl BspProgram for AllToAll {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            match step {
                0 => {
                    for dst in 0..mb.nprocs() {
                        mb.send(dst, (mb.pid() as u64 + 1) * 100 + dst as u64);
                    }
                    Step::Continue
                }
                _ => {
                    *state = mb.take_incoming().iter().map(|e| e.msg).sum();
                    Step::Halt
                }
            }
        }
        fn max_state_bytes(&self) -> usize {
            8
        }
        fn max_comm_bytes(&self) -> usize {
            16 * 24
        }
    }

    #[test]
    fn matches_reference_and_uses_single_disk() {
        let v = 8;
        let reference = run_sequential(&AllToAll, vec![0u64; v]).unwrap();
        let runner = SibeynRunner { block_bytes: 64, ..Default::default() };
        let (res, io) = runner.run(&AllToAll, vec![0u64; v]).unwrap();
        assert_eq!(res.states, reference.states);
        assert!(io.parallel_ops > 0);
        // Single disk: utilization is exactly 1 block per op.
        assert!((io.utilization() - 1.0).abs() < 1e-9);
        assert_eq!(io.per_disk_reads.len(), 1);
    }

    #[test]
    fn superstep_limit() {
        struct Forever;
        impl BspProgram for Forever {
            type State = u8;
            type Msg = u8;
            fn superstep(&self, _: usize, _: &mut Mailbox<u8>, _: &mut u8) -> Step {
                Step::Continue
            }
            fn max_state_bytes(&self) -> usize {
                1
            }
        }
        let runner = SibeynRunner { block_bytes: 64, max_supersteps: 5 };
        assert!(runner.run(&Forever, vec![0u8; 2]).is_err());
    }
}
