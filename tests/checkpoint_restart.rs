//! Crash/restart chaos sweep: kill a checkpointed run at *every* barrier
//! — after the manifest committed, mid-manifest-write (torn), and
//! mid-superstep (journaled but uncommitted) — then resume and demand the
//! result is bit-identical to the uninterrupted run: final states, the
//! communication ledger, counted parallel I/O, per-drive op counts, and
//! the drive bytes themselves.
//!
//! The workload is state-dependent across supersteps, so resuming from
//! the wrong barrier, replaying with different message placement, or
//! leaking a half-done superstep's writes all change the final states.

use em_bsp::{BspProgram, BspStarParams, Mailbox, Step};
use em_core::{EmError, EmMachine, KillPoint, ParEmSimulator, SeqEmSimulator};
use em_disk::Pipeline;
use std::collections::BTreeMap;
use std::path::Path;

/// Supersteps the workload runs (barriers 0..SUPERSTEPS are kill targets).
const SUPERSTEPS: usize = 5;

/// Every superstep folds the incoming messages into the state and sends
/// state-derived messages, so the final states encode the whole history.
struct Diffuse;
impl BspProgram for Diffuse {
    type State = u64;
    type Msg = u64;
    fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
        let v = mb.nprocs();
        for e in mb.take_incoming() {
            *state = state.wrapping_add(e.msg);
        }
        if step + 1 < SUPERSTEPS {
            mb.send((mb.pid() + 1) % v, *state + step as u64);
            mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
            Step::Continue
        } else {
            Step::Halt
        }
    }
    fn max_state_bytes(&self) -> usize {
        124
    }
    fn max_comm_bytes(&self) -> usize {
        2 * 24
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("em-sim-ckpt-{}-{name}", std::process::id()))
}

fn init_states(v: usize) -> Vec<u64> {
    (0..v as u64).map(|x| x * 13 + 5).collect()
}

/// The durable artifacts that must be bit-identical after a resume: the
/// drive files and the committed manifests (a resumed run must rebuild
/// the *same* checkpoints, so a second crash resumes just as well).
fn durable_fingerprint(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let entry = entry.unwrap();
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let name = path.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
            let leaf = entry.file_name().to_string_lossy().into_owned();
            let durable = (leaf.starts_with("disk-") && leaf.ends_with(".bin"))
                || (leaf.starts_with("manifest-") && leaf.ends_with(".ckpt"));
            if durable {
                files.insert(name, std::fs::read(&path).unwrap());
            }
        }
    }
    files
}

fn all_kill_points() -> Vec<KillPoint> {
    (0..SUPERSTEPS)
        .flat_map(|b| {
            [KillPoint::AtBarrier(b), KillPoint::MidSuperstep(b), KillPoint::MidManifest(b)]
        })
        .collect()
}

fn sweep_seq(pipeline: Pipeline, tag: &str) {
    let v = 16;
    let machine = EmMachine::uniprocessor(256, 2, 64, 1);
    let base = tmp(tag);
    let make = |dir: std::path::PathBuf| {
        SeqEmSimulator::new(machine)
            .with_seed(11)
            .with_pipeline(pipeline)
            .with_file_backend(dir)
            .with_checkpointing(true)
    };
    let dir_a = base.join("uninterrupted");
    let (a, ra) = make(dir_a.clone()).run(&Diffuse, init_states(v)).unwrap();
    let bytes_a = durable_fingerprint(&dir_a);
    for kill in all_kill_points() {
        let dir_b = base.join(format!("{kill:?}"));
        let sim = make(dir_b.clone());
        let err = sim.clone().with_kill_point(kill).run(&Diffuse, init_states(v)).unwrap_err();
        assert!(matches!(err, EmError::Killed { .. }), "{tag}/{kill:?}: {err}");
        let (b, rb) = sim.resume(&Diffuse).unwrap();
        assert_eq!(a.states, b.states, "{tag}/{kill:?}: states");
        assert_eq!(a.ledger, b.ledger, "{tag}/{kill:?}: ledger");
        assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops, "{tag}/{kill:?}: ops");
        assert_eq!(ra.io.per_disk_reads, rb.io.per_disk_reads, "{tag}/{kill:?}: reads");
        assert_eq!(ra.io.per_disk_writes, rb.io.per_disk_writes, "{tag}/{kill:?}: writes");
        assert_eq!(ra.phases, rb.phases, "{tag}/{kill:?}: phases");
        assert_eq!(bytes_a, durable_fingerprint(&dir_b), "{tag}/{kill:?}: drive bytes");
    }
    std::fs::remove_dir_all(&base).ok();
}

fn sweep_par(pipeline: Pipeline, tag: &str) {
    let v = 24;
    let p = 3;
    let machine = EmMachine {
        p,
        m_bytes: 256,
        d: 2,
        b_bytes: 64,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 64, l: 1.0 },
    };
    let base = tmp(tag);
    let make = |dir: std::path::PathBuf| {
        ParEmSimulator::new(machine)
            .with_seed(11)
            .with_pipeline(pipeline)
            .with_file_backend(dir)
            .with_checkpointing(true)
    };
    let dir_a = base.join("uninterrupted");
    let (a, ra) = make(dir_a.clone()).run(&Diffuse, init_states(v)).unwrap();
    let bytes_a = durable_fingerprint(&dir_a);
    for kill in all_kill_points() {
        let dir_b = base.join(format!("{kill:?}"));
        let sim = make(dir_b.clone());
        let err = sim.clone().with_kill_point(kill).run(&Diffuse, init_states(v)).unwrap_err();
        assert!(matches!(err, EmError::Killed { .. }), "{tag}/{kill:?}: {err}");
        let (b, rb) = sim.resume(&Diffuse).unwrap();
        assert_eq!(a.states, b.states, "{tag}/{kill:?}: states");
        assert_eq!(a.ledger, b.ledger, "{tag}/{kill:?}: ledger");
        assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops, "{tag}/{kill:?}: ops");
        assert_eq!(ra.io.per_disk_reads, rb.io.per_disk_reads, "{tag}/{kill:?}: reads");
        assert_eq!(ra.io.per_disk_writes, rb.io.per_disk_writes, "{tag}/{kill:?}: writes");
        assert_eq!(ra.phases, rb.phases, "{tag}/{kill:?}: phases");
        assert_eq!(ra.real_comm_bytes, rb.real_comm_bytes, "{tag}/{kill:?}: real comm");
        assert_eq!(bytes_a, durable_fingerprint(&dir_b), "{tag}/{kill:?}: drive bytes");
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn seq_kill_sweep_every_barrier_is_bit_identical() {
    sweep_seq(Pipeline::Off, "seq-off");
}

#[test]
fn seq_kill_sweep_streaming_pipeline_is_bit_identical() {
    sweep_seq(Pipeline::Stream(2), "seq-stream2");
}

#[test]
fn par_kill_sweep_every_barrier_is_bit_identical() {
    sweep_par(Pipeline::Off, "par-off");
}

#[test]
fn par_kill_sweep_streaming_pipeline_is_bit_identical() {
    sweep_par(Pipeline::Stream(2), "par-stream2");
}

#[test]
fn double_crash_resume_still_matches() {
    // Crash, resume into *another* crash, resume again — the durability
    // contract must hold transitively because the resumed run rebuilds
    // the same manifests it would have written uninterrupted.
    let v = 16;
    let machine = EmMachine::uniprocessor(256, 2, 64, 1);
    let base = tmp("double");
    let make = |dir: std::path::PathBuf| {
        SeqEmSimulator::new(machine).with_seed(11).with_file_backend(dir).with_checkpointing(true)
    };
    let dir_a = base.join("uninterrupted");
    let (a, ra) = make(dir_a.clone()).run(&Diffuse, init_states(v)).unwrap();
    let dir_b = base.join("twice-killed");
    let sim = make(dir_b.clone());
    let err = sim
        .clone()
        .with_kill_point(KillPoint::MidManifest(1))
        .run(&Diffuse, init_states(v))
        .unwrap_err();
    assert!(matches!(err, EmError::Killed { .. }));
    let err = sim.clone().with_kill_point(KillPoint::MidSuperstep(3)).resume(&Diffuse).unwrap_err();
    assert!(matches!(err, EmError::Killed { .. }));
    let (b, rb) = sim.resume(&Diffuse).unwrap();
    assert_eq!(a.states, b.states);
    assert_eq!(a.ledger, b.ledger);
    assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops);
    assert_eq!(durable_fingerprint(&dir_a), durable_fingerprint(&dir_b));
    std::fs::remove_dir_all(&base).ok();
}
