//! Teardown hygiene: the persistent runtimes must not leak OS threads.
//!
//! The worker threads carry stable names — `em-disk-d{idx}` per drive,
//! `em-compute-w{idx}` per compute-pool worker, `em-disk-uring` for the
//! kernel-ring reaper — so this suite can count them by prefix via
//! `/proc/self/task/*/comm` and pin two contracts:
//!
//! 1. **Persistence**: across repeated `build_disks()`/`run_on()`/
//!    `resume()` cycles on one simulator, and across `SimService` job
//!    churn, the compute-pool thread count stays constant — the pool is
//!    reused, never respawned per run or per job.
//! 2. **Teardown**: dropping the owners (arrays, simulators, service)
//!    joins every named thread; nothing is left behind.
//!
//! Everything lives in ONE `#[test]` so concurrent tests in this binary
//! cannot distort the counts. On platforms without `/proc` the test
//! skips with a note.

use em_core::{ComputeMode, EmMachine, KillPoint, SeqEmSimulator};
use em_service::{JobSpec, ServiceConfig, SimService};

use em_bsp::{BspProgram, Executor, Mailbox, Step};

struct AddOne;
impl BspProgram for AddOne {
    type State = u64;
    type Msg = u64;
    fn superstep(&self, _: usize, _: &mut Mailbox<u64>, s: &mut u64) -> Step {
        *s += 1;
        Step::Halt
    }
    fn max_state_bytes(&self) -> usize {
        8
    }
}

/// Current threads of this process whose name starts with any of the
/// given prefixes, sorted. `None` when `/proc` is unavailable.
fn named_threads(prefixes: &[&str]) -> Option<Vec<String>> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut out = Vec::new();
    for task in tasks.flatten() {
        let comm = task.path().join("comm");
        let Ok(name) = std::fs::read_to_string(comm) else { continue };
        let name = name.trim().to_string();
        if prefixes.iter().any(|p| name.starts_with(p)) {
            out.push(name);
        }
    }
    out.sort();
    Some(out)
}

const PREFIXES: [&str; 3] = ["em-disk-d", "em-compute-w", "em-disk-uring"];

#[test]
fn runtimes_reuse_threads_and_tear_down_cleanly() {
    if named_threads(&PREFIXES).is_none() {
        eprintln!("/proc/self/task unavailable; skipping thread-leak test");
        return;
    }
    let count = || named_threads(&PREFIXES).unwrap();
    assert_eq!(count(), Vec::<String>::new(), "leftover workers before the test starts");

    let machine = EmMachine::uniprocessor(1 << 16, 2, 64, 1);
    let dir = std::env::temp_dir().join(format!("em-thread-leak-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // --- 1. build_disks()/run_on() cycles on one simulator. ---
    {
        let sim = SeqEmSimulator::new(machine)
            .with_seed(5)
            .with_compute_mode(ComputeMode::Threaded(2))
            .with_file_backend(dir.join("cycles"));
        let mut baseline: Option<Vec<String>> = None;
        for round in 0..5 {
            let mut disks = sim.build_disks().unwrap();
            sim.run_on(&mut disks, &AddOne, (0..8u64).collect()).unwrap();
            // The disk workers live as long as the array; the compute
            // pool lives on the simulator. Every round must see the
            // exact same set of named threads — reuse, not respawn.
            let now = count();
            match &baseline {
                None => {
                    assert!(
                        now.iter().any(|t| t.starts_with("em-compute-w")),
                        "Threaded(2) run must have created the persistent pool: {now:?}"
                    );
                    baseline = Some(now);
                }
                Some(base) => {
                    assert_eq!(&now, base, "thread set changed at run_on cycle {round}");
                }
            }
            drop(disks);
        }
        // Dropping the arrays reclaimed every drive worker; the compute
        // pool (and, if engaged, nothing else) remains on the simulator.
        let after = count();
        assert!(
            after.iter().all(|t| t.starts_with("em-compute-w")),
            "drive workers must die with their array: {after:?}"
        );
        drop(sim);
    }
    assert_eq!(count(), Vec::<String>::new(), "workers leaked past simulator drop");

    // --- 2. Crash + resume() reuses the simulator's pool. ---
    {
        let sim = SeqEmSimulator::new(machine)
            .with_seed(6)
            .with_compute_mode(ComputeMode::Threaded(2))
            .with_file_backend(dir.join("resume"))
            .with_checkpointing(true);
        sim.clone()
            .with_kill_point(KillPoint::AtBarrier(0))
            .run(&AddOne, (0..8u64).collect())
            .unwrap_err();
        let pool_threads: Vec<String> =
            count().into_iter().filter(|t| t.starts_with("em-compute-w")).collect();
        sim.resume(&AddOne).unwrap();
        let pool_after: Vec<String> =
            count().into_iter().filter(|t| t.starts_with("em-compute-w")).collect();
        assert_eq!(pool_after, pool_threads, "resume() must reuse the run's compute pool");
        drop(sim);
    }
    assert_eq!(count(), Vec::<String>::new(), "workers leaked past resume teardown");

    // --- 3. SimService job churn shares one pool. ---
    {
        let service = SimService::new(ServiceConfig::new(2, 64, 4096, 1 << 20));
        let mut baseline: Option<Vec<String>> = None;
        for round in 0..6u64 {
            let tenant_sim = SeqEmSimulator::new(machine)
                .with_seed(round)
                .with_compute_mode(ComputeMode::Threaded(2));
            let spec = JobSpec::new("churn", round, machine, 8).with_budgets(8, 64).with_tracks(64);
            let lease = service.admit_with(spec, tenant_sim).unwrap();
            lease.execute(&AddOne, (0..8u64).collect()).unwrap();
            lease.complete();
            let now = count();
            match &baseline {
                None => baseline = Some(now),
                Some(base) => {
                    assert_eq!(&now, base, "service thread set changed at job {round}");
                }
            }
        }
        drop(service);
    }
    assert_eq!(count(), Vec::<String>::new(), "workers leaked past service drop");

    std::fs::remove_dir_all(&dir).ok();
}
