//! End-to-end on *real files*: the simulators run full algorithm
//! pipelines against the file backend and produce the same results as the
//! in-memory reference, and the backing files actually carry the data.

use em_bsp::{BspStarParams, SeqExecutor};
use em_core::{EmMachine, ParEmSimulator, Recording, SeqEmSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("em-sim-it-{}-{name}", std::process::id()))
}

#[test]
fn sort_on_file_backend_matches_reference() {
    let dir = tmp("sort");
    let mut rng = StdRng::seed_from_u64(1);
    let items: Vec<u64> = (0..30_000).map(|_| rng.gen()).collect();
    let want = em_algos::sort::cgm_sort(&SeqExecutor, 16, items.clone()).unwrap();

    let machine = EmMachine::uniprocessor(64 * 1024, 4, 1024, 1);
    let rec = Recording::new(SeqEmSimulator::new(machine).with_file_backend(&dir));
    let got = em_algos::sort::cgm_sort(&rec, 16, items).unwrap();
    assert_eq!(got, want);

    // The disk files exist and are non-trivial.
    let mut total = 0u64;
    for entry in std::fs::read_dir(&dir).unwrap() {
        total += entry.unwrap().metadata().unwrap().len();
    }
    assert!(total > 200_000, "disk files should hold the dataset, got {total} bytes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_file_backend_pipeline() {
    let dir = tmp("par");
    let machine = EmMachine {
        p: 3,
        m_bytes: 64 * 1024,
        d: 2,
        b_bytes: 1024,
        g_io: 1,
        router: BspStarParams { p: 3, g: 1.0, b: 1024, l: 1.0 },
    };
    let rec = Recording::new(ParEmSimulator::new(machine).with_file_backend(&dir));
    let succ = em_algos::graph::list_ranking::random_chain(5000, 9);
    let w = vec![1u64; 5000];
    let got = em_algos::graph::list_ranking::cgm_list_rank(&rec, 12, &succ, &w).unwrap();
    let want = em_algos::graph::list_ranking::seq_list_rank(&succ, &w);
    assert_eq!(got, want);
    // One directory per real processor.
    for i in 0..3 {
        assert!(dir.join(format!("proc-{i}")).is_dir(), "proc-{i} disks missing");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reruns_on_same_seed_are_identical_including_io_counts() {
    let machine = EmMachine::uniprocessor(32 * 1024, 4, 512, 1);
    let items: Vec<u64> = (0..5_000).map(|i| i * 2654435761 % 100_000).collect();
    let run = |seed: u64| {
        let rec = Recording::new(SeqEmSimulator::new(machine).with_seed(seed));
        let out = em_algos::sort::cgm_sort(&rec, 16, items.clone()).unwrap();
        (out, rec.total_io_ops())
    };
    let (a_out, a_ops) = run(42);
    let (b_out, b_ops) = run(42);
    assert_eq!(a_out, b_out);
    assert_eq!(a_ops, b_ops, "same seed must give identical I/O traces");
    let (_, c_ops) = run(43);
    // Different seed: same result, possibly different op count (random π).
    assert!(c_ops > 0);
}
