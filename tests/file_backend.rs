//! End-to-end on *real files*: the simulators run full algorithm
//! pipelines against the file backend and produce the same results as the
//! in-memory reference, and the backing files actually carry the data.

use em_bsp::{BspStarParams, SeqExecutor};
use em_core::{EmMachine, ParEmSimulator, Recording, SeqEmSimulator};
use em_disk::{Block, DiskArray, DiskConfig, IoMode, Pipeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("em-sim-it-{}-{name}", std::process::id()))
}

#[test]
fn sort_on_file_backend_matches_reference() {
    let dir = tmp("sort");
    let mut rng = StdRng::seed_from_u64(1);
    let items: Vec<u64> = (0..30_000).map(|_| rng.gen()).collect();
    let want = em_algos::sort::cgm_sort(&SeqExecutor, 16, items.clone()).unwrap();

    let machine = EmMachine::uniprocessor(64 * 1024, 4, 1024, 1);
    let rec = Recording::new(SeqEmSimulator::new(machine).with_file_backend(&dir));
    let got = em_algos::sort::cgm_sort(&rec, 16, items).unwrap();
    assert_eq!(got, want);

    // The disk files exist and are non-trivial.
    let mut total = 0u64;
    for entry in std::fs::read_dir(&dir).unwrap() {
        total += entry.unwrap().metadata().unwrap().len();
    }
    assert!(total > 200_000, "disk files should hold the dataset, got {total} bytes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_file_backend_pipeline() {
    let dir = tmp("par");
    let machine = EmMachine {
        p: 3,
        m_bytes: 64 * 1024,
        d: 2,
        b_bytes: 1024,
        g_io: 1,
        router: BspStarParams { p: 3, g: 1.0, b: 1024, l: 1.0 },
    };
    let rec = Recording::new(ParEmSimulator::new(machine).with_file_backend(&dir));
    let succ = em_algos::graph::list_ranking::random_chain(5000, 9);
    let w = vec![1u64; 5000];
    let got = em_algos::graph::list_ranking::cgm_list_rank(&rec, 12, &succ, &w).unwrap();
    let want = em_algos::graph::list_ranking::seq_list_rank(&succ, &w);
    assert_eq!(got, want);
    // One directory per real processor.
    for i in 0..3 {
        assert!(dir.join(format!("proc-{i}")).is_dir(), "proc-{i} disks missing");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reruns_on_same_seed_are_identical_including_io_counts() {
    let machine = EmMachine::uniprocessor(32 * 1024, 4, 512, 1);
    let items: Vec<u64> = (0..5_000).map(|i| i * 2654435761 % 100_000).collect();
    let run = |seed: u64| {
        let rec = Recording::new(SeqEmSimulator::new(machine).with_seed(seed));
        let out = em_algos::sort::cgm_sort(&rec, 16, items.clone()).unwrap();
        (out, rec.total_io_ops())
    };
    let (a_out, a_ops) = run(42);
    let (b_out, b_ops) = run(42);
    assert_eq!(a_out, b_out);
    assert_eq!(a_ops, b_ops, "same seed must give identical I/O traces");
    let (_, c_ops) = run(43);
    // Different seed: same result, possibly different op count (random π).
    assert!(c_ops > 0);
}

/// Drive the same seeded stripe workload against a memory array, a
/// serial-mode file array and a parallel-mode file array, returning the
/// final stats plus every block read back along the way.
fn seeded_stripe_workload(arr: &mut DiskArray, seed: u64) -> (em_disk::IoStats, Vec<Vec<u8>>) {
    let d = arr.num_disks();
    let b = arr.block_bytes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut read_back = Vec::new();
    for round in 0..40 {
        // A full-width write stripe with seeded contents...
        let track = rng.gen_range(0..16usize);
        let writes: Vec<(usize, usize, Block)> = (0..d)
            .map(|disk| {
                let mut data = vec![0u8; b];
                rng.fill(&mut data[..]);
                (disk, track, Block::from_vec(data))
            })
            .collect();
        arr.write_stripe(&writes).unwrap();
        // ...then a partial read stripe (some drives idle, some tracks
        // never written — those must read back as zeros everywhere).
        let width = rng.gen_range(1..=d);
        let addrs: Vec<(usize, usize)> =
            (0..width).map(|disk| (disk, rng.gen_range(0..20usize))).collect();
        for block in arr.read_stripe(&addrs).unwrap() {
            read_back.push(block.as_bytes().to_vec());
        }
        if round % 8 == 0 {
            arr.sync().unwrap();
        }
    }
    arr.sync().unwrap();
    (arr.stats().clone(), read_back)
}

#[test]
fn cross_backend_differential_stats_and_bytes() {
    let seed = 0xD1FFu64;
    let cfg = DiskConfig::new(4, 512).unwrap();

    let mut mem = DiskArray::new_memory(cfg);
    let (mem_stats, mem_reads) = seeded_stripe_workload(&mut mem, seed);

    let dir_serial = tmp("diff-serial");
    let dir_parallel = tmp("diff-parallel");
    let mut file_runs = Vec::new();
    for (dir, mode) in [(&dir_serial, IoMode::Serial), (&dir_parallel, IoMode::Parallel)] {
        let mut arr = DiskArray::new_file(cfg.with_io_mode(mode), dir).unwrap();
        let run = seeded_stripe_workload(&mut arr, seed);
        let used: Vec<usize> = (0..4).map(|d| arr.tracks_used(d)).collect();
        drop(arr); // join the workers before inspecting the files
        file_runs.push((run, used));
    }
    let (serial_run, serial_used) = &file_runs[0];
    let (parallel_run, parallel_used) = &file_runs[1];

    // Identical counted IoStats and identical data on every backend.
    assert_eq!(&mem_stats, &serial_run.0, "memory vs file-serial IoStats diverge");
    assert_eq!(&mem_stats, &parallel_run.0, "memory vs file-parallel IoStats diverge");
    assert_eq!(&mem_reads, &serial_run.1, "memory vs file-serial bytes diverge");
    assert_eq!(&mem_reads, &parallel_run.1, "memory vs file-parallel bytes diverge");
    assert_eq!(serial_used, parallel_used);

    // The two file modes leave byte-identical drive files behind.
    for d in 0..4 {
        let a = std::fs::read(dir_serial.join(format!("disk-{d}.bin"))).unwrap();
        let b = std::fs::read(dir_parallel.join(format!("disk-{d}.bin"))).unwrap();
        assert_eq!(a, b, "on-disk bytes of drive {d} differ between IoModes");
        assert!(!a.is_empty());
    }
    std::fs::remove_dir_all(&dir_serial).ok();
    std::fs::remove_dir_all(&dir_parallel).ok();
}

#[test]
fn simulator_iostats_identical_across_backends_and_io_modes() {
    let machine = EmMachine::uniprocessor(32 * 1024, 4, 512, 1);
    let items: Vec<u64> = (0..8_000).map(|i| i * 2654435761 % 100_000).collect();

    let run = |sim: SeqEmSimulator| {
        let rec = Recording::new(sim.with_seed(7));
        let out = em_algos::sort::cgm_sort(&rec, 16, items.clone()).unwrap();
        let reports = rec.take_reports();
        let stats: Vec<em_disk::IoStats> = reports.into_iter().map(|r| r.io).collect();
        (out, stats)
    };

    let (mem_out, mem_stats) = run(SeqEmSimulator::new(machine));
    let dir_s = tmp("sim-serial");
    let (ser_out, ser_stats) =
        run(SeqEmSimulator::new(machine).with_file_backend(&dir_s).with_io_mode(IoMode::Serial));
    let dir_p = tmp("sim-parallel");
    let (par_out, par_stats) =
        run(SeqEmSimulator::new(machine).with_file_backend(&dir_p).with_io_mode(IoMode::Parallel));

    let dir_db = tmp("sim-doublebuffer");
    let (db_out, db_stats) = run(SeqEmSimulator::new(machine)
        .with_file_backend(&dir_db)
        .with_pipeline(Pipeline::DoubleBuffer));

    assert_eq!(mem_out, ser_out);
    assert_eq!(mem_out, par_out);
    assert_eq!(mem_out, db_out);
    assert_eq!(mem_stats, ser_stats, "memory vs file-serial simulator IoStats diverge");
    assert_eq!(mem_stats, par_stats, "memory vs file-parallel simulator IoStats diverge");
    assert_eq!(mem_stats, db_stats, "memory vs file-double-buffered simulator IoStats diverge");

    std::fs::remove_dir_all(&dir_s).ok();
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_db).ok();
}

#[test]
fn pipelined_simulator_leaves_identical_drive_files() {
    // Strongest form of the pipeline contract on real files: with the same
    // seed, Off and DoubleBuffer runs leave byte-identical drive files —
    // every write went to the same track with the same contents.
    let machine = EmMachine::uniprocessor(32 * 1024, 4, 512, 1);
    let items: Vec<u64> = (0..5_000).map(|i| i * 2654435761 % 100_000).collect();
    let run = |dir: &std::path::Path, pipeline: Pipeline| {
        let rec = Recording::new(
            SeqEmSimulator::new(machine)
                .with_seed(11)
                .with_file_backend(dir)
                .with_pipeline(pipeline),
        );
        let out = em_algos::sort::cgm_sort(&rec, 16, items.clone()).unwrap();
        (out, rec.total_io_ops())
    };
    let dir_off = tmp("pipe-off");
    let dir_db = tmp("pipe-db");
    let (a_out, a_ops) = run(&dir_off, Pipeline::Off);
    let (b_out, b_ops) = run(&dir_db, Pipeline::DoubleBuffer);
    assert_eq!(a_out, b_out);
    assert_eq!(a_ops, b_ops, "pipelining must not change counted parallel I/O ops");
    for d in 0..4 {
        let a = std::fs::read(dir_off.join(format!("disk-{d}.bin"))).unwrap();
        let b = std::fs::read(dir_db.join(format!("disk-{d}.bin"))).unwrap();
        assert_eq!(a, b, "on-disk bytes of drive {d} differ with pipelining");
        assert!(!a.is_empty());
    }
    std::fs::remove_dir_all(&dir_off).ok();
    std::fs::remove_dir_all(&dir_db).ok();
}

#[test]
fn parallel_simulator_iostats_identical_across_io_modes() {
    let machine = EmMachine {
        p: 2,
        m_bytes: 32 * 1024,
        d: 2,
        b_bytes: 512,
        g_io: 1,
        router: BspStarParams { p: 2, g: 1.0, b: 512, l: 1.0 },
    };
    let items: Vec<u64> = (0..6_000).map(|i| i * 2654435761 % 50_000).collect();
    let run = |dir: &std::path::Path, mode: IoMode, pipeline: Pipeline| {
        let rec = Recording::new(
            ParEmSimulator::new(machine)
                .with_seed(3)
                .with_file_backend(dir)
                .with_io_mode(mode)
                .with_pipeline(pipeline),
        );
        let out = em_algos::sort::cgm_sort(&rec, 16, items.clone()).unwrap();
        (out, rec.total_io_ops())
    };
    let dir_s = tmp("psim-serial");
    let dir_p = tmp("psim-parallel");
    let dir_db = tmp("psim-doublebuffer");
    let (a_out, a_ops) = run(&dir_s, IoMode::Serial, Pipeline::Off);
    let (b_out, b_ops) = run(&dir_p, IoMode::Parallel, Pipeline::Off);
    let (c_out, c_ops) = run(&dir_db, IoMode::Parallel, Pipeline::DoubleBuffer);
    assert_eq!(a_out, b_out);
    assert_eq!(a_ops, b_ops, "IoMode must not change counted parallel I/O ops");
    assert_eq!(a_out, c_out);
    assert_eq!(a_ops, c_ops, "pipelining must not change counted parallel I/O ops");
    std::fs::remove_dir_all(&dir_s).ok();
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_db).ok();
}
