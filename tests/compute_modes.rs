//! ComputeMode differential tests: [`em_core::ComputeMode::Threaded`]
//! in-group compute must be **byte-for-byte** indistinguishable from
//! `Serial` — same final outputs, same message ledger, same counted I/O
//! (total and per phase), and the same bytes on the drive files — for
//! `n ∈ {1, 2, 8}` workers, on both EM simulators, with and without the
//! double-buffered pipeline, and under seeded fault injection with
//! superstep recovery.
//!
//! `tests/cross_executor.rs` runs *every* Table-1 algorithm through the
//! threaded-compute lanes for output equality; this file drills into the
//! run fingerprint (ledger + counted I/O + drive bytes) on a
//! representative workload set where a full cross-product stays fast.

use em_algos::geometry::hull::cgm_convex_hull;
use em_algos::geometry::Point2;
use em_algos::graph::cc::cgm_connected_components;
use em_algos::graph::list_ranking::{cgm_list_rank, random_chain};
use em_algos::permute::cgm_permute;
use em_algos::prefix::cgm_prefix_sums;
use em_algos::sort::cgm_sort;
use em_bsp::{BspStarParams, CommLedger};
use em_core::{
    ComputeMode, CostReport, EmMachine, ParEmSimulator, PhaseIo, Recording, SeqEmSimulator,
};
use em_disk::{IoStats, Pipeline};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const V: usize = 8;

/// Threaded worker counts under test; 1 exercises the serial fallback of
/// the pool, 8 oversubscribes the group (more workers than some groups
/// have virtual processors).
const WORKERS: [usize; 3] = [1, 2, 8];

/// A machine small enough that the EM simulators page contexts in groups.
fn em_machine(p: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: 1 << 16,
        d: 4,
        b_bytes: 256,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 256, l: 1.0 },
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory for one file-backed run.
fn scratch_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("em-compute-modes-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything about a run that must not depend on [`ComputeMode`]: the
/// per-stage counted I/O, the per-phase operation counts, the message
/// ledger, λ, and the raw bytes left on the drive files.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    io: Vec<IoStats>,
    phases: Vec<PhaseIo>,
    comm: Vec<CommLedger>,
    lambda: Vec<usize>,
    drive_bytes: Vec<(String, Vec<u8>)>,
}

fn fingerprint(reports: &[CostReport], dir: &Path) -> Fingerprint {
    Fingerprint {
        io: reports.iter().map(|r| r.io.clone()).collect(),
        phases: reports.iter().map(|r| r.phases.clone()).collect(),
        comm: reports.iter().map(|r| r.comm.clone()).collect(),
        lambda: reports.iter().map(|r| r.lambda).collect(),
        drive_bytes: drive_bytes(dir),
    }
}

/// All regular files under `dir` (recursively), path-sorted, with their
/// contents. The simulators sync at every superstep boundary, so after
/// `run()` the files hold the final committed image.
fn drive_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&p).unwrap()));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn assert_fingerprints_match(base: &Fingerprint, got: &Fingerprint, what: &str) {
    assert_eq!(got.io, base.io, "{what}: counted IoStats diverged");
    assert_eq!(got.phases, base.phases, "{what}: per-phase op counts diverged");
    assert_eq!(got.comm, base.comm, "{what}: message ledger diverged");
    assert_eq!(got.lambda, base.lambda, "{what}: λ diverged");
    // Compare drive bytes without letting a failure dump whole drive files.
    let base_names: Vec<&str> = base.drive_bytes.iter().map(|(n, _)| n.as_str()).collect();
    let got_names: Vec<&str> = got.drive_bytes.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(got_names, base_names, "{what}: drive file set diverged");
    for ((name, b), (_, g)) in base.drive_bytes.iter().zip(&got.drive_bytes) {
        assert!(g == b, "{what}: drive file {name} bytes diverged");
    }
}

/// Run one workload through Serial and every `Threaded(n)` on both
/// simulators and every pipeline lane (`Off`, `DoubleBuffer` ≡
/// `Stream(1)`, `Stream(2)`, `Stream(8)`), each on a fresh file backend,
/// and require identical outputs and identical [`Fingerprint`]s.
fn check_workload<T, FS, FP>(name: &str, seq_f: FS, par_f: FP)
where
    T: PartialEq + std::fmt::Debug,
    FS: Fn(&Recording<SeqEmSimulator>) -> T,
    FP: Fn(&Recording<ParEmSimulator>) -> T,
{
    for pipeline in
        [Pipeline::Off, Pipeline::DoubleBuffer, Pipeline::Stream(2), Pipeline::Stream(8)]
    {
        // Uniprocessor simulator.
        let run_seq = |mode: ComputeMode| {
            let dir = scratch_dir();
            let rec = Recording::new(
                SeqEmSimulator::new(em_machine(1))
                    .with_seed(77)
                    .with_pipeline(pipeline)
                    .with_compute_mode(mode)
                    .with_file_backend(&dir),
            );
            let out = seq_f(&rec);
            let fp = fingerprint(&rec.take_reports(), &dir);
            std::fs::remove_dir_all(&dir).ok();
            (out, fp)
        };
        let (base_out, base_fp) = run_seq(ComputeMode::Serial);
        for n in WORKERS {
            let what = format!("{name}: seq sim, {pipeline:?}, Threaded({n})");
            let (out, fp) = run_seq(ComputeMode::Threaded(n));
            assert_eq!(out, base_out, "{what}: output diverged");
            assert_fingerprints_match(&base_fp, &fp, &what);
        }

        // 3-processor simulator.
        let run_par = |mode: ComputeMode| {
            let dir = scratch_dir();
            let rec = Recording::new(
                ParEmSimulator::new(em_machine(3))
                    .with_seed(78)
                    .with_pipeline(pipeline)
                    .with_compute_mode(mode)
                    .with_file_backend(&dir),
            );
            let out = par_f(&rec);
            let fp = fingerprint(&rec.take_reports(), &dir);
            std::fs::remove_dir_all(&dir).ok();
            (out, fp)
        };
        let (base_out, base_fp) = run_par(ComputeMode::Serial);
        for n in WORKERS {
            let what = format!("{name}: par sim, {pipeline:?}, Threaded({n})");
            let (out, fp) = run_par(ComputeMode::Threaded(n));
            assert_eq!(out, base_out, "{what}: output diverged");
            assert_fingerprints_match(&base_fp, &fp, &what);
        }
    }
}

/// Duplicate one closure body for the two `Recording<…>` types.
macro_rules! check_workload {
    ($name:expr, |$rec:ident| $body:expr) => {
        check_workload($name, |$rec| $body, |$rec| $body)
    };
}

#[test]
fn sort_is_mode_invariant() {
    let mut rng = StdRng::seed_from_u64(200);
    let items: Vec<u64> = (0..500).map(|_| rng.gen_range(0..4000)).collect();
    check_workload!("sort", |rec| cgm_sort(rec, V, items.clone()).unwrap());
}

#[test]
fn permute_is_mode_invariant() {
    let mut rng = StdRng::seed_from_u64(201);
    let n = 300;
    let items: Vec<u64> = (0..n as u64).map(|x| x * 5 + 2).collect();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    check_workload!("permute", |rec| cgm_permute(rec, V, items.clone(), &perm).unwrap());
}

#[test]
fn prefix_sums_are_mode_invariant() {
    let mut rng = StdRng::seed_from_u64(202);
    let items: Vec<u64> = (0..400).map(|_| rng.gen_range(0..90)).collect();
    check_workload!("prefix", |rec| cgm_prefix_sums(rec, V, items.clone()).unwrap());
}

#[test]
fn convex_hull_is_mode_invariant() {
    let mut rng = StdRng::seed_from_u64(203);
    let pts: Vec<Point2> =
        (0..250).map(|_| Point2::new(rng.gen_range(-400..400), rng.gen_range(-400..400))).collect();
    check_workload!("hull", |rec| cgm_convex_hull(rec, V, pts.clone()).unwrap());
}

#[test]
fn list_rank_is_mode_invariant() {
    let n = 220;
    let succ = random_chain(n, 204);
    let weights: Vec<u64> = (0..n as u64).map(|i| i % 6 + 1).collect();
    check_workload!("list-rank", |rec| cgm_list_rank(rec, V, &succ, &weights).unwrap());
}

#[test]
fn connected_components_are_mode_invariant() {
    let mut rng = StdRng::seed_from_u64(205);
    let n = 70;
    let edges: Vec<(u64, u64)> = (0..110)
        .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
        .filter(|&(a, b)| a != b)
        .collect();
    check_workload!("cc", |rec| cgm_connected_components(rec, V, n, &edges).unwrap().label);
}

/// Under a seeded fault plan with retries and superstep recovery, the
/// threaded compute path must still converge to the fault-free Serial
/// result, with counted parallel I/O (which excludes retry and recovery
/// traffic) and the message ledger bit-identical across modes.
#[test]
fn faulted_recovery_is_mode_invariant() {
    use em_bsp::{run_sequential, BspProgram, Mailbox, Step};
    use em_core::RecoveryPolicy;
    use em_disk::{FaultPlan, RetryPolicy};

    struct ChainFold;
    impl BspProgram for ChainFold {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            for e in mb.take_incoming() {
                // Non-commutative hash chain: sensitive to inbox order, so
                // any mode- or replay-induced reordering changes the state.
                *state = state
                    .wrapping_mul(0x0000_0100_0000_01B3)
                    .wrapping_add(((e.src as u64) << 32) ^ e.msg);
            }
            let v = mb.nprocs();
            if step < 4 {
                for j in 1..=3u64 {
                    mb.send((mb.pid() + j as usize) % v, *state ^ j);
                }
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            124
        }
        fn max_comm_bytes(&self) -> usize {
            3 * 24
        }
    }

    let init: Vec<u64> = (0..V as u64).map(|i| i * 9 + 2).collect();
    let reference = run_sequential(&ChainFold, init.clone()).unwrap().states;
    let plan = || FaultPlan::seeded(0xF16, 4, 300, 30);

    let mut seq_base: Option<(u64, CommLedger)> = None;
    let mut par_base: Option<(u64, CommLedger)> = None;
    for mode in [ComputeMode::Serial, ComputeMode::Threaded(2), ComputeMode::Threaded(8)] {
        let (res, report) = SeqEmSimulator::new(em_machine(1))
            .with_seed(77)
            .with_compute_mode(mode)
            .with_checksums(true)
            .with_fault_plan(plan())
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(64))
            .run(&ChainFold, init.clone())
            .unwrap();
        assert_eq!(res.states, reference, "seq EM under faults, {mode:?}");
        match &seq_base {
            None => seq_base = Some((report.io.parallel_ops, report.comm.clone())),
            Some((ops, ledger)) => {
                assert_eq!(report.io.parallel_ops, *ops, "seq counted ops diverged, {mode:?}");
                assert_eq!(&report.comm, ledger, "seq message ledger diverged, {mode:?}");
            }
        }

        let (res, report) = ParEmSimulator::new(em_machine(3))
            .with_seed(78)
            .with_compute_mode(mode)
            .with_checksums(true)
            .with_fault_plan(plan())
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(64))
            .run(&ChainFold, init.clone())
            .unwrap();
        assert_eq!(res.states, reference, "par EM under faults, {mode:?}");
        match &par_base {
            None => par_base = Some((report.io.parallel_ops, report.comm.clone())),
            Some((ops, ledger)) => {
                assert_eq!(report.io.parallel_ops, *ops, "par counted ops diverged, {mode:?}");
                assert_eq!(&report.comm, ledger, "par message ledger diverged, {mode:?}");
            }
        }
    }
}
