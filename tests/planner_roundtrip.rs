//! Capstone: the resource planner's chosen configuration actually runs —
//! the plan's `v` executes on the simulator without budget violations, the
//! plan's `k` matches what the simulator derives, and the predicted I/O is
//! within a small constant factor of the measured count.

use em_core::{EmMachine, Planner, ProblemProfile, Recording, SeqEmSimulator};

#[test]
fn planned_configuration_executes_within_predictions() {
    let machine = EmMachine::uniprocessor(1 << 18, 4, 2048, 1);
    let n = 120_000usize;
    let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();

    let profile = ProblemProfile::sort(n, 8);
    let planner = Planner { machine };
    let plan = planner.plan(&profile).expect("feasible plan");

    // The chosen plan must actually execute without budget violations.
    let rec = Recording::new(SeqEmSimulator::new(machine).with_seed(5));
    let sorted = em_algos::sort::cgm_sort(&rec, plan.v, items.clone()).unwrap();
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let report = rec.take_reports().pop().unwrap();
    assert!(report.io.parallel_ops > 0);

    // At a moderate v where the γ upper bound is not dominated by the
    // v²-sample worst case, the prediction tracks the measurement within
    // a small constant factor (it is a bound-based estimate).
    let eval = planner.evaluate(&profile, 64).expect("v = 64 feasible");
    let rec = Recording::new(SeqEmSimulator::new(machine).with_seed(5));
    let _ = em_algos::sort::cgm_sort(&rec, 64, items).unwrap();
    let report = rec.take_reports().pop().unwrap();
    assert!(
        report.k.abs_diff(eval.k) <= eval.k / 2 + 1,
        "planned k = {}, simulator derived k = {}",
        eval.k,
        report.k
    );
    let measured = report.io.parallel_ops as f64;
    assert!(
        eval.predicted_io_ops >= measured / 2.0 && eval.predicted_io_ops <= measured * 10.0,
        "prediction {} vs measured {measured}",
        eval.predicted_io_ops
    );
}

#[test]
fn planner_prefers_condition_satisfying_plans() {
    let machine = EmMachine::uniprocessor(1 << 18, 8, 2048, 1);
    let plan = Planner { machine }.plan(&ProblemProfile::sort(4_000_000, 8)).expect("plan");
    // With a large problem there is enough slackness to satisfy every
    // Theorem 1 condition.
    assert!(
        plan.all_conditions_hold,
        "expected a condition-satisfying plan, got: {:#?}",
        plan.checks
    );
}
