//! Cross-executor differential tests: every Table-1 algorithm must produce
//! identical results on all four engines —
//!
//! 1. the sequential in-memory reference ([`em_bsp::SeqExecutor`]),
//! 2. the threaded BSP machine ([`em_bsp::ThreadedRunner`]),
//! 3. the uniprocessor external-memory simulation (Algorithms 1 + 2),
//! 4. the multiprocessor external-memory simulation (Algorithm 3).
//!
//! This is the correctness contract of the paper's simulation technique:
//! a BSP-like algorithm runs *unchanged* in external memory.

use em_algos::geometry::dominance::{cgm_dominance_counts, seq_dominance_counts};
use em_algos::geometry::envelope::{cgm_lower_envelope, seq_lower_envelope};
use em_algos::geometry::hull::{cgm_convex_hull, seq_convex_hull};
use em_algos::geometry::maxima3d::{cgm_maxima3d, seq_maxima3d};
use em_algos::geometry::next_element::{cgm_predecessor, seq_predecessor};
use em_algos::geometry::rectangles::{cgm_union_area, seq_union_area, Rect};
use em_algos::geometry::{Point2, Point3};
use em_algos::graph::cc::{cgm_connected_components, seq_connected_components};
use em_algos::graph::contraction::cgm_list_rank_contraction;
use em_algos::graph::euler::{cgm_euler_tree, seq_tree_info};
use em_algos::graph::lca::{cgm_batched_lca, seq_lca};
use em_algos::graph::list_ranking::{cgm_list_rank, random_chain, seq_list_rank};
use em_algos::permute::{cgm_permute, seq_permute};
use em_algos::prefix::{cgm_prefix_sums, seq_prefix_sums};
use em_algos::sort::{cgm_sort, seq_sort};
use em_algos::transpose::{cgm_transpose, seq_transpose};
use em_bsp::BspStarParams;
use em_bsp::{Executor, SeqExecutor, ThreadedRunner};
use em_core::{ComputeMode, EmMachine, ParEmSimulator, SeqEmSimulator};
use em_disk::Pipeline;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

const V: usize = 8;

/// A machine small enough that the EM simulators page contexts in groups.
fn em_machine(p: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: 1 << 16,
        d: 4,
        b_bytes: 256,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 256, l: 1.0 },
    }
}

/// Run `f` against all four executors and assert the outputs agree. The
/// two EM simulators additionally run with the streaming fetch/compute/
/// write pipeline at several window depths ([`Pipeline::DoubleBuffer`] ≡
/// `Stream(1)`, plus `Stream(2)` and `Stream(8)`) and with
/// [`ComputeMode::Threaded`] in-group compute — no overlap knob may
/// change any observable result.
fn check_all<T: PartialEq + std::fmt::Debug>(f: impl Fn(&dyn ExecDyn) -> T, reference: T) {
    let seq = SeqExecutor;
    let thr = ThreadedRunner::new(4);
    let em1 = SeqEmSimulator::new(em_machine(1)).with_seed(77);
    let emp = ParEmSimulator::new(em_machine(3)).with_seed(78);
    let em1_pipe = em1.clone().with_pipeline(Pipeline::DoubleBuffer);
    let emp_pipe = emp.clone().with_pipeline(Pipeline::DoubleBuffer);
    let em1_s2 = em1.clone().with_pipeline(Pipeline::Stream(2));
    let emp_s2 = emp.clone().with_pipeline(Pipeline::Stream(2));
    let em1_mt = em1.clone().with_compute_mode(ComputeMode::Threaded(4));
    let emp_mt = emp.clone().with_compute_mode(ComputeMode::Threaded(4));
    let em1_mt_pipe = em1_pipe.clone().with_compute_mode(ComputeMode::Threaded(2));
    let emp_mt_pipe = emp_pipe.clone().with_compute_mode(ComputeMode::Threaded(2));
    let em1_mt_s8 = em1_mt.clone().with_pipeline(Pipeline::Stream(8));
    let emp_mt_s8 = emp_mt.clone().with_pipeline(Pipeline::Stream(8));
    assert_eq!(f(&seq), reference, "sequential reference executor");
    assert_eq!(f(&thr), reference, "threaded runner");
    assert_eq!(f(&em1), reference, "uniprocessor EM simulation");
    assert_eq!(f(&emp), reference, "3-processor EM simulation");
    assert_eq!(f(&em1_pipe), reference, "uniprocessor EM simulation (pipelined)");
    assert_eq!(f(&emp_pipe), reference, "3-processor EM simulation (pipelined)");
    assert_eq!(f(&em1_s2), reference, "uniprocessor EM simulation (stream depth 2)");
    assert_eq!(f(&emp_s2), reference, "3-processor EM simulation (stream depth 2)");
    assert_eq!(f(&em1_mt), reference, "uniprocessor EM simulation (threaded compute)");
    assert_eq!(f(&emp_mt), reference, "3-processor EM simulation (threaded compute)");
    assert_eq!(f(&em1_mt_pipe), reference, "uniprocessor EM simulation (pipelined + threaded)");
    assert_eq!(f(&emp_mt_pipe), reference, "3-processor EM simulation (pipelined + threaded)");
    assert_eq!(f(&em1_mt_s8), reference, "uniprocessor EM simulation (stream depth 8 + threaded)");
    assert_eq!(f(&emp_mt_s8), reference, "3-processor EM simulation (stream depth 8 + threaded)");
}

/// Object-safe shim so `check_all` can take any executor.
trait ExecDyn {
    fn sort_u64(&self, v: usize, items: Vec<u64>) -> Vec<u64>;
    fn permute_u64(&self, v: usize, items: Vec<u64>, perm: &[usize]) -> Vec<u64>;
    fn transpose_u64(&self, v: usize, r: usize, c: usize, data: Vec<u64>) -> Vec<u64>;
    fn prefix(&self, v: usize, items: Vec<u64>) -> Vec<u64>;
    fn hull(&self, v: usize, pts: Vec<Point2>) -> Vec<Point2>;
    fn maxima(&self, v: usize, pts: Vec<Point3>) -> Vec<Point3>;
    fn dominance(&self, v: usize, pts: &[(Point2, u64)]) -> Vec<u64>;
    fn predecessor(&self, v: usize, keys: &[i64], queries: &[i64]) -> Vec<Option<i64>>;
    fn envelope(&self, v: usize, segs: &[(i64, i64, i64)]) -> Vec<(i64, Option<i64>)>;
    fn union_area(&self, v: usize, rects: &[Rect]) -> u64;
    fn list_rank(&self, v: usize, succ: &[u64], w: &[u64]) -> Vec<u64>;
    fn tree_depths(
        &self,
        v: usize,
        n: usize,
        edges: &[(u64, u64)],
        root: u64,
    ) -> (Vec<u64>, Vec<u64>, Vec<u64>);
    fn cc_labels(&self, v: usize, n: usize, edges: &[(u64, u64)]) -> Vec<u64>;
    fn list_rank_contraction(&self, v: usize, succ: &[u64], w: &[u64]) -> Vec<u64>;
    fn lca(
        &self,
        v: usize,
        n: usize,
        edges: &[(u64, u64)],
        root: u64,
        q: &[(u64, u64)],
    ) -> Vec<u64>;
}

impl<E: Executor> ExecDyn for E {
    fn sort_u64(&self, v: usize, items: Vec<u64>) -> Vec<u64> {
        cgm_sort(self, v, items).unwrap()
    }
    fn permute_u64(&self, v: usize, items: Vec<u64>, perm: &[usize]) -> Vec<u64> {
        cgm_permute(self, v, items, perm).unwrap()
    }
    fn transpose_u64(&self, v: usize, r: usize, c: usize, data: Vec<u64>) -> Vec<u64> {
        cgm_transpose(self, v, r, c, data).unwrap()
    }
    fn prefix(&self, v: usize, items: Vec<u64>) -> Vec<u64> {
        cgm_prefix_sums(self, v, items).unwrap()
    }
    fn hull(&self, v: usize, pts: Vec<Point2>) -> Vec<Point2> {
        cgm_convex_hull(self, v, pts).unwrap()
    }
    fn maxima(&self, v: usize, pts: Vec<Point3>) -> Vec<Point3> {
        cgm_maxima3d(self, v, pts).unwrap()
    }
    fn dominance(&self, v: usize, pts: &[(Point2, u64)]) -> Vec<u64> {
        cgm_dominance_counts(self, v, pts).unwrap()
    }
    fn predecessor(&self, v: usize, keys: &[i64], queries: &[i64]) -> Vec<Option<i64>> {
        cgm_predecessor(self, v, keys, queries).unwrap()
    }
    fn envelope(&self, v: usize, segs: &[(i64, i64, i64)]) -> Vec<(i64, Option<i64>)> {
        cgm_lower_envelope(self, v, segs).unwrap()
    }
    fn union_area(&self, v: usize, rects: &[Rect]) -> u64 {
        cgm_union_area(self, v, rects).unwrap()
    }
    fn list_rank(&self, v: usize, succ: &[u64], w: &[u64]) -> Vec<u64> {
        cgm_list_rank(self, v, succ, w).unwrap()
    }
    fn tree_depths(
        &self,
        v: usize,
        n: usize,
        edges: &[(u64, u64)],
        root: u64,
    ) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let info = cgm_euler_tree(self, v, n, edges, root).unwrap();
        (info.parent, info.depth, info.size)
    }
    fn cc_labels(&self, v: usize, n: usize, edges: &[(u64, u64)]) -> Vec<u64> {
        cgm_connected_components(self, v, n, edges).unwrap().label
    }
    fn list_rank_contraction(&self, v: usize, succ: &[u64], w: &[u64]) -> Vec<u64> {
        cgm_list_rank_contraction(self, v, succ, w).unwrap()
    }
    fn lca(
        &self,
        v: usize,
        n: usize,
        edges: &[(u64, u64)],
        root: u64,
        q: &[(u64, u64)],
    ) -> Vec<u64> {
        cgm_batched_lca(self, v, n, edges, root, q).unwrap()
    }
}

/// A messaging-heavy program whose final states are a non-commutative
/// hash chain over each inbox: any reordering (or duplication) of
/// messages — e.g. after a faulted superstep is replayed — changes the
/// result. μ is declared as 124 bytes so a 256-byte machine pages two
/// contexts per group.
struct ChainFold;
impl em_bsp::BspProgram for ChainFold {
    type State = u64;
    type Msg = u64;
    fn superstep(
        &self,
        step: usize,
        mb: &mut em_bsp::Mailbox<u64>,
        state: &mut u64,
    ) -> em_bsp::Step {
        for e in mb.take_incoming() {
            // FNV-style chain: sensitive to inbox order.
            *state = state
                .wrapping_mul(0x0000_0100_0000_01B3)
                .wrapping_add(((e.src as u64) << 32) ^ e.msg);
        }
        let v = mb.nprocs();
        if step < 4 {
            for j in 1..=3u64 {
                mb.send((mb.pid() + j as usize) % v, *state ^ j);
            }
            em_bsp::Step::Continue
        } else {
            em_bsp::Step::Halt
        }
    }
    fn max_state_bytes(&self) -> usize {
        124
    }
    fn max_comm_bytes(&self) -> usize {
        3 * 24
    }
}

/// The canonical `(src, per-sender send order)` inbox ordering must hold on
/// every engine — including EM simulations that retry faulted I/O and
/// replay whole supersteps, at every pipeline depth.
#[test]
fn inbox_ordering_holds_under_faults_and_replay() {
    use em_bsp::run_sequential;
    use em_core::RecoveryPolicy;
    use em_disk::{FaultPlan, RetryPolicy};

    let init: Vec<u64> = (0..V as u64).map(|i| i * 7 + 1).collect();
    let reference = run_sequential(&ChainFold, init.clone()).unwrap().states;
    assert_eq!(
        ThreadedRunner::new(4).execute(&ChainFold, init.clone()).unwrap().states,
        reference,
        "threaded runner"
    );

    let base_seed: u64 = std::env::var("EM_SIM_FAULT_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim().to_owned();
            s.strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(0xF16);
    for salt in [0u64, 0x9E37, 0xBEEF] {
        let plan = || FaultPlan::seeded(base_seed ^ salt, 4, 300, 30);
        for pipeline in
            [Pipeline::Off, Pipeline::DoubleBuffer, Pipeline::Stream(2), Pipeline::Stream(8)]
        {
            let (res, _) = SeqEmSimulator::new(em_machine(1))
                .with_seed(77)
                .with_pipeline(pipeline)
                .with_checksums(true)
                .with_fault_plan(plan())
                .with_retry(RetryPolicy::new(4))
                .with_recovery(RecoveryPolicy::new(64))
                .run(&ChainFold, init.clone())
                .unwrap();
            assert_eq!(res.states, reference, "seq EM, salt {salt:#x}, {pipeline:?}");

            let (res, _) = ParEmSimulator::new(em_machine(3))
                .with_seed(78)
                .with_pipeline(pipeline)
                .with_checksums(true)
                .with_fault_plan(plan())
                .with_retry(RetryPolicy::new(4))
                .with_recovery(RecoveryPolicy::new(64))
                .run(&ChainFold, init.clone())
                .unwrap();
            assert_eq!(res.states, reference, "par EM, salt {salt:#x}, {pipeline:?}");
        }
    }
}

/// Killing a drive while the streaming window has ≥2 groups in flight
/// must surface the same typed error as the synchronous path — and must
/// *not* trip the barrier's unjoined-ticket check: a failing attempt
/// drops its window tickets before the recovery machinery touches the
/// array (DESIGN.md §3.2.7).
#[test]
fn drive_death_with_streaming_window_in_flight_is_typed() {
    use em_bsp::run_sequential;
    use em_core::{EmError, RecoveryPolicy};
    use em_disk::{DiskError, FaultPlan, RetryPolicy};

    // 256 B of simulated memory with μ = 124 pages k = 2 contexts per
    // group: V = 8 virtual processors form 4 groups, so a Stream(4)
    // window is fully primed — four group fetches in flight — before the
    // first join.
    let machine = |p: usize| EmMachine {
        p,
        m_bytes: 256,
        d: 4,
        b_bytes: 64,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 64, l: 1.0 },
    };
    let init: Vec<u64> = (0..V as u64).map(|i| i * 7 + 1).collect();
    let reference = run_sequential(&ChainFold, init.clone()).unwrap().states;

    let mut deaths_seen = 0;
    for death_op in [2u64, 8, 20, 40] {
        let plan = || FaultPlan::none().with_worker_death(0, death_op);
        let res = SeqEmSimulator::new(machine(1))
            .with_seed(77)
            .with_pipeline(Pipeline::Stream(4))
            .with_checksums(true)
            .with_fault_plan(plan())
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(8))
            .run(&ChainFold, init.clone());
        match res {
            Err(EmError::FaultUnrecoverable { report, source, .. }) => {
                deaths_seen += 1;
                assert!(report.injected.dead_ops > 0, "death op {death_op}");
                assert!(
                    matches!(*source, EmError::Disk(DiskError::WorkerLost { disk: 0 })),
                    "death op {death_op}: want WorkerLost (the window must drain \
                     before the barrier), got {source}"
                );
            }
            // The drive outlived the schedule: the run must be clean.
            Ok((res, _)) => assert_eq!(res.states, reference, "death op {death_op}"),
            Err(e) => panic!("death op {death_op}: unexpected error {e}"),
        }

        let res = ParEmSimulator::new(machine(3))
            .with_seed(78)
            .with_pipeline(Pipeline::Stream(4))
            .with_checksums(true)
            .with_fault_plan(plan())
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(8))
            .run(&ChainFold, init.clone());
        match res {
            Err(EmError::FaultUnrecoverable { report, .. }) => {
                assert!(report.injected.dead_ops > 0, "par death op {death_op}");
            }
            Ok((res, _)) => assert_eq!(res.states, reference, "par death op {death_op}"),
            Err(e) => panic!("par death op {death_op}: unexpected error {e}"),
        }
    }
    assert!(deaths_seen > 0, "at least one schedule must kill the drive mid-run");
}

#[test]
fn sort_all_executors() {
    let mut rng = StdRng::seed_from_u64(100);
    let items: Vec<u64> = (0..600).map(|_| rng.gen_range(0..5000)).collect();
    let want = seq_sort(items.clone());
    check_all(|e| e.sort_u64(V, items.clone()), want);
}

#[test]
fn permute_all_executors() {
    let mut rng = StdRng::seed_from_u64(101);
    let n = 300;
    let items: Vec<u64> = (0..n as u64).map(|x| x * 3 + 1).collect();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    let want = seq_permute(&items, &perm);
    check_all(|e| e.permute_u64(V, items.clone(), &perm), want);
}

#[test]
fn transpose_all_executors() {
    let (r, c) = (12, 17);
    let data: Vec<u64> = (0..(r * c) as u64).collect();
    let want = seq_transpose(r, c, &data);
    check_all(|e| e.transpose_u64(V, r, c, data.clone()), want);
}

#[test]
fn prefix_sums_all_executors() {
    let mut rng = StdRng::seed_from_u64(102);
    let items: Vec<u64> = (0..500).map(|_| rng.gen_range(0..100)).collect();
    let want = seq_prefix_sums(&items);
    check_all(|e| e.prefix(V, items.clone()), want);
}

#[test]
fn convex_hull_all_executors() {
    let mut rng = StdRng::seed_from_u64(103);
    let pts: Vec<Point2> =
        (0..300).map(|_| Point2::new(rng.gen_range(-500..500), rng.gen_range(-500..500))).collect();
    let want = seq_convex_hull(&pts);
    check_all(|e| e.hull(V, pts.clone()), want);
}

#[test]
fn maxima3d_all_executors() {
    let mut rng = StdRng::seed_from_u64(104);
    let mut xs: Vec<i64> = (0..250).collect();
    xs.shuffle(&mut rng);
    let pts: Vec<Point3> = xs
        .into_iter()
        .map(|x| Point3::new(x, rng.gen_range(-60..60), rng.gen_range(-60..60)))
        .collect();
    let want = seq_maxima3d(&pts);
    check_all(|e| e.maxima(V, pts.clone()), want);
}

#[test]
fn dominance_all_executors() {
    let mut rng = StdRng::seed_from_u64(105);
    let pts: Vec<(Point2, u64)> = (0..200)
        .map(|_| (Point2::new(rng.gen_range(-30..30), rng.gen_range(-30..30)), rng.gen_range(1..5)))
        .collect();
    let want = seq_dominance_counts(&pts);
    check_all(|e| e.dominance(V, &pts), want);
}

#[test]
fn predecessor_all_executors() {
    let mut rng = StdRng::seed_from_u64(106);
    let keys: Vec<i64> = (0..150).map(|_| rng.gen_range(-400..400)).collect();
    let queries: Vec<i64> = (0..200).map(|_| rng.gen_range(-500..500)).collect();
    let want = seq_predecessor(&keys, &queries);
    check_all(|e| e.predecessor(V, &keys, &queries), want);
}

#[test]
fn envelope_all_executors() {
    let mut rng = StdRng::seed_from_u64(107);
    let segs: Vec<(i64, i64, i64)> = (0..120)
        .map(|_| {
            let x1 = rng.gen_range(-300..280);
            (x1, x1 + rng.gen_range(1..150), rng.gen_range(-50..50))
        })
        .collect();
    let want = seq_lower_envelope(&segs);
    check_all(|e| e.envelope(V, &segs), want);
}

#[test]
fn union_area_all_executors() {
    let mut rng = StdRng::seed_from_u64(108);
    let rects: Vec<Rect> = (0..100)
        .map(|_| {
            let x1 = rng.gen_range(-200..180);
            let y1 = rng.gen_range(-200..180);
            Rect::new(x1, x1 + rng.gen_range(1..90), y1, y1 + rng.gen_range(1..90))
        })
        .collect();
    let want = seq_union_area(&rects);
    check_all(|e| e.union_area(V, &rects), want);
}

#[test]
fn list_rank_all_executors() {
    let n = 240;
    let succ = random_chain(n, 109);
    let weights: Vec<u64> = (0..n as u64).map(|i| i % 5 + 1).collect();
    let want = seq_list_rank(&succ, &weights);
    check_all(|e| e.list_rank(V, &succ, &weights), want);
}

#[test]
fn euler_tree_all_executors() {
    let mut rng = StdRng::seed_from_u64(110);
    let n = 60;
    let edges: Vec<(u64, u64)> = (1..n as u64).map(|i| (rng.gen_range(0..i), i)).collect();
    let root = 0u64;
    let (p, d, s) = seq_tree_info(n, &edges, root);
    check_all(|e| e.tree_depths(V, n, &edges, root), (p, d, s));
}

#[test]
fn connected_components_all_executors() {
    let mut rng = StdRng::seed_from_u64(111);
    let n = 80;
    let edges: Vec<(u64, u64)> = (0..120)
        .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
        .filter(|&(a, b)| a != b)
        .collect();
    let want = seq_connected_components(n, &edges);
    check_all(|e| e.cc_labels(V, n, &edges), want);
}

#[test]
fn list_rank_contraction_all_executors() {
    let n = 220;
    let succ = random_chain(n, 112);
    let weights: Vec<u64> = (0..n as u64).map(|i| i % 4 + 1).collect();
    let want = seq_list_rank(&succ, &weights);
    check_all(|e| e.list_rank_contraction(V, &succ, &weights), want);
}

#[test]
fn batched_lca_all_executors() {
    let mut rng = StdRng::seed_from_u64(113);
    let n = 50;
    let edges: Vec<(u64, u64)> = (1..n as u64).map(|i| (rng.gen_range(0..i), i)).collect();
    let root = 3u64;
    let queries: Vec<(u64, u64)> =
        (0..40).map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64))).collect();
    let (parent, depth, _) = seq_tree_info(n, &edges, root);
    let want: Vec<u64> = queries.iter().map(|&(a, b)| seq_lca(&parent, &depth, a, b)).collect();
    check_all(|e| e.lca(V, n, &edges, root, &queries), want);
}
