//! Fault injection and superstep-granular recovery across the stack.
//!
//! The robustness contract: for any seeded [`FaultPlan`] whose faults are
//! all *recoverable* (transients, torn writes, bit flips — no worker
//! deaths), a run with checksums, a retry policy and a recovery policy
//! must produce final program states **byte-identical** to the fault-free
//! run, on both EM simulators and in both pipeline modes, while the
//! paper-facing counted parallel I/O (`IoStats::parallel_ops`) stays
//! exactly what the fault-free run counted. Retry and recovery traffic is
//! tallied separately (`retried_blocks`, `recovery_ops`).
//!
//! The fault seed can be swept externally via `EM_SIM_FAULT_SEED`
//! (decimal or `0x`-hex). Correctness assertions are unconditional;
//! assertions that a particular seed *fired* faults are only made for the
//! default pinned seed, so CI seed sweeps cannot flake on a quiet seed.

use em_bsp::{run_sequential, BspProgram, BspStarParams, Mailbox, Step};
use em_core::{EmError, EmMachine, ParEmSimulator, RecoveryPolicy, SeqEmSimulator};
use em_disk::{DiskError, FaultPlan, Pipeline, RetryPolicy};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Default seed, shared with the `faults` figure sweep.
const DEFAULT_SEED: u64 = 0xF16;

fn fault_seed() -> u64 {
    match std::env::var("EM_SIM_FAULT_SEED") {
        Ok(raw) => {
            let s = raw.trim();
            s.strip_prefix("0x")
                .map(|hex| u64::from_str_radix(hex, 16))
                .unwrap_or_else(|| s.parse())
                .expect("EM_SIM_FAULT_SEED must be decimal or 0x-hex")
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// True when running with the default seed; gate "faults actually fired"
/// assertions on this so external seed sweeps stay flake-free.
fn seed_pinned() -> bool {
    std::env::var("EM_SIM_FAULT_SEED").is_err()
}

fn machine(p: usize, m: usize, d: usize, b: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: m,
        d,
        b_bytes: b,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b, l: 1.0 },
    }
}

/// Nearest-neighbour diffusion for several rounds: multi-superstep, every
/// virtual processor both sends and receives, states depend on the whole
/// history — a good canary for lost or replayed work.
struct Diffuse;

impl BspProgram for Diffuse {
    type State = u64;
    type Msg = u64;
    fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
        let v = mb.nprocs();
        for e in mb.take_incoming() {
            *state = state.wrapping_add(e.msg);
        }
        if step < 5 {
            mb.send((mb.pid() + 1) % v, *state + step as u64);
            mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
            Step::Continue
        } else {
            Step::Halt
        }
    }
    fn max_state_bytes(&self) -> usize {
        124
    }
    fn max_comm_bytes(&self) -> usize {
        2 * 24
    }
}

const V: usize = 24;
const D: usize = 2;

fn init_states() -> Vec<u64> {
    (0..V as u64).collect()
}

/// A plan of recoverable faults (no deaths) over a generous op horizon.
fn recoverable_plan(seed: u64) -> FaultPlan {
    let plan = FaultPlan::seeded(seed, D, 600, 25);
    assert!(!plan.has_deaths(), "seeded plans never schedule deaths");
    plan
}

// ---------------------------------------------------------------------------
// Seeded-plan recovery: faulty run ≡ fault-free run.
// ---------------------------------------------------------------------------

#[test]
fn seq_seeded_faults_recover_to_identical_run() {
    let prog = Diffuse;
    for pipeline in [Pipeline::Off, Pipeline::DoubleBuffer] {
        let base = SeqEmSimulator::new(machine(1, 256, D, 64))
            .with_seed(9)
            .with_pipeline(pipeline)
            .with_checksums(true);
        let (clean, clean_report) = base.run(&prog, init_states()).unwrap();
        assert!(clean_report.faults.is_none(), "no plan, no recovery => no fault report");
        assert_eq!(clean.states, run_sequential(&prog, init_states()).unwrap().states);

        let faulty_sim = base
            .clone()
            .with_fault_plan(recoverable_plan(fault_seed()))
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(64));
        let (faulty, report) = faulty_sim.run(&prog, init_states()).unwrap();

        assert_eq!(faulty.states, clean.states, "pipeline {pipeline:?}");
        assert_eq!(faulty.ledger, clean.ledger);
        assert_eq!(report.lambda, clean_report.lambda);
        assert_eq!(
            report.io.parallel_ops, clean_report.io.parallel_ops,
            "counted parallel I/O must not include retry/recovery traffic"
        );
        assert_eq!(report.phases, clean_report.phases);

        let faults = report.faults.expect("fault plan => fault report");
        assert!(faults.failed_superstep.is_none());
        if seed_pinned() {
            assert!(faults.injected.total() > 0, "default seed must actually fire faults");
        }
    }
}

#[test]
fn par_seeded_faults_recover_to_identical_run() {
    let prog = Diffuse;
    for pipeline in [Pipeline::Off, Pipeline::DoubleBuffer] {
        let base = ParEmSimulator::new(machine(3, 256, D, 64))
            .with_seed(2)
            .with_pipeline(pipeline)
            .with_checksums(true);
        let (clean, clean_report) = base.run(&prog, init_states()).unwrap();
        assert!(clean_report.faults.is_none());

        let faulty_sim = base
            .clone()
            .with_fault_plan(recoverable_plan(fault_seed()))
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(64));
        let (faulty, report) = faulty_sim.run(&prog, init_states()).unwrap();

        assert_eq!(faulty.states, clean.states, "pipeline {pipeline:?}");
        assert_eq!(faulty.ledger, clean.ledger);
        assert_eq!(report.lambda, clean_report.lambda);
        assert_eq!(report.io.parallel_ops, clean_report.io.parallel_ops);
        assert_eq!(report.phases, clean_report.phases);

        let faults = report.faults.expect("fault plan => fault report");
        assert!(faults.failed_superstep.is_none());
        if seed_pinned() {
            // Each of the three worker threads runs its own copy of the
            // plan, so the shared counters see every firing.
            assert!(faults.injected.total() > 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Single-fault sweeps: exercise every phase of the run deterministically.
// ---------------------------------------------------------------------------

/// With no retry policy, a single transient anywhere in a superstep must be
/// healed by replaying that superstep; one landing in the initial load or
/// final read-back (outside the replay envelope) must surface as the typed
/// unrecoverable error — never a panic or silent corruption.
#[test]
fn seq_single_transient_sweep_replays_or_reports() {
    let prog = Diffuse;
    let base = SeqEmSimulator::new(machine(1, 256, D, 64)).with_seed(9).with_checksums(true);
    let (clean, _) = base.run(&prog, init_states()).unwrap();

    let mut replayed = 0usize;
    for disk in 0..D {
        for op in (0..160).step_by(7) {
            let plan = FaultPlan::none().with_transient(disk, op as u64);
            let sim = base.clone().with_fault_plan(plan).with_recovery(RecoveryPolicy::new(4));
            match sim.run(&prog, init_states()) {
                Ok((res, report)) => {
                    assert_eq!(res.states, clean.states, "disk {disk} op {op}");
                    let faults = report.faults.expect("fault run => fault report");
                    if faults.replays > 0 {
                        assert_eq!(faults.recovered_supersteps, faults.replays);
                        replayed += 1;
                    }
                }
                Err(EmError::FaultUnrecoverable { report, source, .. }) => {
                    assert_eq!(report.injected.total(), 1, "disk {disk} op {op}");
                    assert!(matches!(*source, EmError::Disk(ref e) if e.is_transient()));
                }
                Err(e) => panic!("unexpected error for disk {disk} op {op}: {e}"),
            }
        }
    }
    assert!(replayed > 0, "some transients must land inside a superstep and be replayed");
}

/// The same sweep with a retry policy: the substrate absorbs every single
/// transient below the simulator, so no run fails, no superstep is ever
/// replayed, and the retries show up in the separate tally.
#[test]
fn seq_single_transient_sweep_absorbed_by_retries() {
    let prog = Diffuse;
    let base = SeqEmSimulator::new(machine(1, 256, D, 64)).with_seed(9).with_checksums(true);
    let (clean, clean_report) = base.run(&prog, init_states()).unwrap();

    let mut retried = 0usize;
    for op in (0..160).step_by(11) {
        let plan = FaultPlan::none().with_transient(0, op as u64);
        let sim = base
            .clone()
            .with_fault_plan(plan)
            .with_retry(RetryPolicy::new(3))
            .with_recovery(RecoveryPolicy::new(4));
        let (res, report) = sim.run(&prog, init_states()).unwrap();
        assert_eq!(res.states, clean.states, "op {op}");
        assert_eq!(report.io.parallel_ops, clean_report.io.parallel_ops, "op {op}");
        let faults = report.faults.expect("fault run => fault report");
        assert_eq!(faults.replays, 0, "retry must absorb the fault below the simulator");
        if faults.retried_blocks > 0 {
            retried += 1;
        }
    }
    assert!(retried > 0, "some transients must be hit and retried");
}

#[test]
fn par_single_transient_sweep_replays_or_reports() {
    let prog = Diffuse;
    let base = ParEmSimulator::new(machine(3, 256, D, 64)).with_seed(2).with_checksums(true);
    let (clean, _) = base.run(&prog, init_states()).unwrap();

    let mut replayed = 0usize;
    for op in (0..90).step_by(13) {
        // Every worker thread clones the plan, so this transient fires once
        // per thread on its private disk 0.
        let plan = FaultPlan::none().with_transient(0, op as u64);
        let sim = base.clone().with_fault_plan(plan).with_recovery(RecoveryPolicy::new(4));
        match sim.run(&prog, init_states()) {
            Ok((res, report)) => {
                assert_eq!(res.states, clean.states, "op {op}");
                let faults = report.faults.expect("fault run => fault report");
                if faults.replays > 0 {
                    replayed += 1;
                }
            }
            Err(EmError::FaultUnrecoverable { report, .. }) => {
                assert!(report.injected.total() >= 1, "op {op}");
            }
            Err(e) => panic!("unexpected error for op {op}: {e}"),
        }
    }
    assert!(replayed > 0, "some transients must trigger a coordinated parallel replay");
}

// ---------------------------------------------------------------------------
// Unrecoverable faults: typed error with a populated report, no panic.
// ---------------------------------------------------------------------------

#[test]
fn worker_death_is_typed_and_reported_on_both_simulators() {
    let prog = Diffuse;
    let plan = || FaultPlan::none().with_worker_death(0, 30);
    assert!(plan().has_deaths());

    let err = SeqEmSimulator::new(machine(1, 256, D, 64))
        .with_checksums(true)
        .with_fault_plan(plan())
        .with_retry(RetryPolicy::new(4))
        .with_recovery(RecoveryPolicy::new(8))
        .run(&prog, init_states())
        .unwrap_err();
    match err {
        EmError::FaultUnrecoverable { report, source, .. } => {
            assert!(report.injected.dead_ops > 0);
            assert!(matches!(*source, EmError::Disk(DiskError::WorkerLost { disk: 0 })));
            assert!(matches!(*source, EmError::Disk(ref e) if !e.is_transient()));
        }
        e => panic!("expected FaultUnrecoverable, got {e}"),
    }

    let err = ParEmSimulator::new(machine(3, 256, D, 64))
        .with_checksums(true)
        .with_fault_plan(plan())
        .with_retry(RetryPolicy::new(4))
        .with_recovery(RecoveryPolicy::new(8))
        .run(&prog, init_states())
        .unwrap_err();
    match err {
        EmError::FaultUnrecoverable { report, .. } => {
            assert!(report.injected.dead_ops > 0);
        }
        e => panic!("expected FaultUnrecoverable, got {e}"),
    }
}

#[test]
fn replay_budget_exhaustion_is_typed() {
    // Two transients at consecutive ops on every op position of a dense
    // range, no retry policy, replay budget 1: at least one position must
    // exhaust the budget and surface the typed error with its tallies.
    let prog = Diffuse;
    let base = SeqEmSimulator::new(machine(1, 256, D, 64)).with_seed(9).with_checksums(true);
    let mut exhausted = false;
    for op in (40..120).step_by(10) {
        let mut plan = FaultPlan::none();
        // Enough one-shot transients that a single replay re-encounters one.
        for delta in 0..24 {
            plan = plan.with_transient(0, (op + delta) as u64);
        }
        let sim = base.clone().with_fault_plan(plan).with_recovery(RecoveryPolicy::new(1));
        if let Err(err) = sim.run(&prog, init_states()) {
            match err {
                EmError::FaultUnrecoverable { report, .. } => {
                    exhausted = true;
                    assert!(report.injected.total() > 0);
                }
                e => panic!("unexpected error at op {op}: {e}"),
            }
        }
    }
    assert!(exhausted, "a dense transient burst must exhaust a replay budget of 1");
}

// ---------------------------------------------------------------------------
// The fault-free path: recovery machinery must be observation-free.
// ---------------------------------------------------------------------------

#[test]
fn faultless_run_with_recovery_enabled_is_identical() {
    let prog = Diffuse;
    for pipeline in [Pipeline::Off, Pipeline::DoubleBuffer] {
        // Sequential simulator.
        let plain =
            SeqEmSimulator::new(machine(1, 256, D, 64)).with_seed(9).with_pipeline(pipeline);
        let (a, ra) = plain.run(&prog, init_states()).unwrap();
        let guarded = plain
            .clone()
            .with_checksums(true)
            .with_retry(RetryPolicy::new(3))
            .with_recovery(RecoveryPolicy::default());
        let (b, rb) = guarded.run(&prog, init_states()).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(
            ra.io.parallel_ops, rb.io.parallel_ops,
            "recovery epochs must not change counted I/O"
        );
        assert_eq!(ra.phases, rb.phases);
        assert_eq!(ra.tracks_per_disk, rb.tracks_per_disk);
        let faults = rb.faults.expect("recovery enabled => fault report");
        assert_eq!(faults.injected.total(), 0);
        assert_eq!(faults.retried_blocks, 0);
        assert_eq!(faults.replays, 0);
        assert_eq!(faults.recovered_supersteps, 0);

        // Parallel simulator.
        let plain =
            ParEmSimulator::new(machine(3, 256, D, 64)).with_seed(2).with_pipeline(pipeline);
        let (a, ra) = plain.run(&prog, init_states()).unwrap();
        let guarded = plain
            .clone()
            .with_checksums(true)
            .with_retry(RetryPolicy::new(3))
            .with_recovery(RecoveryPolicy::default());
        let (b, rb) = guarded.run(&prog, init_states()).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(ra.io.parallel_ops, rb.io.parallel_ops);
        assert_eq!(ra.phases, rb.phases);
        let faults = rb.faults.expect("recovery enabled => fault report");
        assert_eq!(faults.replays, 0);
        assert_eq!(faults.recovered_supersteps, 0);
    }
}

// ---------------------------------------------------------------------------
// File backend: drive files after recovery ≡ drive files of a clean run.
// ---------------------------------------------------------------------------

fn collect_files(dir: &Path, root: &Path, out: &mut BTreeMap<PathBuf, Vec<u8>>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            collect_files(&path, root, out);
        } else {
            let rel = path.strip_prefix(root).unwrap().to_path_buf();
            out.insert(rel, std::fs::read(&path).unwrap());
        }
    }
}

/// Compare every drive file under two roots. A never-written track tail
/// reads back as zeros, so the shorter file is zero-padded before the
/// byte comparison — rollback re-zeroes fresh tracks rather than
/// truncating files.
fn assert_drive_bytes_equal(clean: &Path, faulty: &Path) {
    let (mut a, mut b) = (BTreeMap::new(), BTreeMap::new());
    collect_files(clean, clean, &mut a);
    collect_files(faulty, faulty, &mut b);
    assert!(!a.is_empty(), "clean run produced no drive files");
    let keys: BTreeSet<_> = a.keys().chain(b.keys()).cloned().collect();
    for key in keys {
        let mut x = a.get(&key).cloned().unwrap_or_default();
        let mut y = b.get(&key).cloned().unwrap_or_default();
        let n = x.len().max(y.len());
        x.resize(n, 0);
        y.resize(n, 0);
        assert_eq!(x, y, "drive file {} differs after recovery (zero-padded)", key.display());
    }
}

#[test]
fn seq_file_backend_drive_bytes_match_after_recovery() {
    let prog = Diffuse;
    let root = std::env::temp_dir().join(format!("em-fault-seq-{}", std::process::id()));
    let clean_dir = root.join("clean");
    let faulty_dir = root.join("faulty");

    let base = SeqEmSimulator::new(machine(1, 256, D, 64)).with_seed(9).with_checksums(true);
    let (clean, _) = base.clone().with_file_backend(&clean_dir).run(&prog, init_states()).unwrap();
    let (faulty, _) = base
        .clone()
        .with_file_backend(&faulty_dir)
        .with_fault_plan(recoverable_plan(fault_seed() ^ 0xA5A5))
        .with_retry(RetryPolicy::new(4))
        .with_recovery(RecoveryPolicy::new(64))
        .run(&prog, init_states())
        .unwrap();

    assert_eq!(faulty.states, clean.states);
    assert_drive_bytes_equal(&clean_dir, &faulty_dir);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn par_file_backend_drive_bytes_match_after_recovery() {
    let prog = Diffuse;
    let root = std::env::temp_dir().join(format!("em-fault-par-{}", std::process::id()));
    let clean_dir = root.join("clean");
    let faulty_dir = root.join("faulty");

    let base = ParEmSimulator::new(machine(2, 256, D, 64)).with_seed(2).with_checksums(true);
    let (clean, _) = base.clone().with_file_backend(&clean_dir).run(&prog, init_states()).unwrap();
    let (faulty, _) = base
        .clone()
        .with_file_backend(&faulty_dir)
        .with_fault_plan(recoverable_plan(fault_seed() ^ 0x5A5A))
        .with_retry(RetryPolicy::new(4))
        .with_recovery(RecoveryPolicy::new(64))
        .run(&prog, init_states())
        .unwrap();

    assert_eq!(faulty.states, clean.states);
    assert_drive_bytes_equal(&clean_dir, &faulty_dir);
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------------
// Determinism: identical seeds reproduce identical faulty runs.
// ---------------------------------------------------------------------------

#[test]
fn identically_seeded_faulty_runs_are_bit_identical() {
    let prog = Diffuse;
    let run = || {
        SeqEmSimulator::new(machine(1, 256, D, 64))
            .with_seed(9)
            .with_checksums(true)
            .with_fault_plan(recoverable_plan(fault_seed()))
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(64))
            .run(&prog, init_states())
            .unwrap()
    };
    let (res_a, rep_a) = run();
    let (res_b, rep_b) = run();
    assert_eq!(res_a.states, res_b.states);
    assert_eq!(res_a.ledger, res_b.ledger);
    assert_eq!(rep_a.io, rep_b.io);
    assert_eq!(rep_a.phases, rep_b.phases);
    assert_eq!(rep_a.faults, rep_b.faults, "injection and recovery tallies must be reproducible");
}
