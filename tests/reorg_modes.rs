//! Reorganization-pool and AutoTuner differential tests (DESIGN.md
//! §3.2.11).
//!
//! Part one: attaching a [`em_core::ComputePool`] while the Computation
//! Phase stays [`em_core::ComputeMode::Serial`] parallelizes exactly one
//! thing — Algorithm 2's per-bucket routing-plan construction — and must
//! be **byte-for-byte** indistinguishable from the unpooled run: same
//! final outputs, same message ledger, same counted I/O (total and per
//! phase), and the same bytes on the drive files — for pool widths
//! `w ∈ {1, 2, 8}`, on both EM simulators, with and without the streaming
//! pipeline, under a block cache, and under seeded fault injection with
//! superstep recovery.
//!
//! Part two: `Auto` knob requests ([`em_core::ComputeMode::Auto`],
//! [`em_disk::Pipeline::Auto`], auto cache) are resolved by the
//! [`em_core::AutoTuner`] before disks are built; the resolution is
//! recorded in [`em_core::CostReport::resolved_config`], identical on
//! identically-seeded reruns, bit-identical in effect to the manually
//! configured twin, applied again on crash/`resume()`, and fixed at
//! admission time (and logged) by the multi-tenant service.

use em_algos::permute::cgm_permute;
use em_algos::sort::cgm_sort;
use em_bsp::{BspProgram, BspStarParams, CommLedger, Mailbox, Step};
use em_core::{
    AutoTuner, ComputeMode, ComputePool, CostReport, EmError, EmMachine, KillPoint, ParEmSimulator,
    PhaseIo, Recording, SeqEmSimulator, TuneInputs,
};
use em_disk::{IoStats, Pipeline};
use em_service::{JobSpec, ServiceConfig, SimService};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const V: usize = 8;

/// Pool widths under test; 1 exercises the single-worker pool, 8
/// oversubscribes the buckets (more workers than `min(D, groups)`).
const POOL_WIDTHS: [usize; 3] = [1, 2, 8];

/// A machine small enough that the EM simulators page contexts in groups
/// and route messages through several buckets.
fn em_machine(p: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: 1 << 16,
        d: 4,
        b_bytes: 256,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 256, l: 1.0 },
    }
}

/// A *tiny* machine (M = 256 B against μ = 124 contexts) for the direct
/// `BspProgram` workloads below: k = 2 forces eight groups, so the
/// reorganization routes through `min(D, groups) = 2` buckets — the span
/// the pooled plan builders chunk over.
fn tiny_machine(p: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: 256,
        d: 2,
        b_bytes: 64,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 64, l: 1.0 },
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory for one file-backed run.
fn scratch_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("em-reorg-modes-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything about a run that must not depend on the attached pool: the
/// per-stage counted I/O, the per-phase operation counts, the message
/// ledger, λ, and the raw bytes left on the drive files.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    io: Vec<IoStats>,
    phases: Vec<PhaseIo>,
    comm: Vec<CommLedger>,
    lambda: Vec<usize>,
    drive_bytes: Vec<(String, Vec<u8>)>,
}

fn fingerprint(reports: &[CostReport], dir: &Path) -> Fingerprint {
    Fingerprint {
        io: reports.iter().map(|r| r.io.clone()).collect(),
        phases: reports.iter().map(|r| r.phases.clone()).collect(),
        comm: reports.iter().map(|r| r.comm.clone()).collect(),
        lambda: reports.iter().map(|r| r.lambda).collect(),
        drive_bytes: drive_bytes(dir),
    }
}

/// All regular files under `dir` (recursively), path-sorted, with their
/// contents.
fn drive_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&p).unwrap()));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn assert_fingerprints_match(base: &Fingerprint, got: &Fingerprint, what: &str) {
    assert_eq!(got.io, base.io, "{what}: counted IoStats diverged");
    assert_eq!(got.phases, base.phases, "{what}: per-phase op counts diverged");
    assert_eq!(got.comm, base.comm, "{what}: message ledger diverged");
    assert_eq!(got.lambda, base.lambda, "{what}: λ diverged");
    // Compare drive bytes without letting a failure dump whole drive files.
    let base_names: Vec<&str> = base.drive_bytes.iter().map(|(n, _)| n.as_str()).collect();
    let got_names: Vec<&str> = got.drive_bytes.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(got_names, base_names, "{what}: drive file set diverged");
    for ((name, b), (_, g)) in base.drive_bytes.iter().zip(&got.drive_bytes) {
        assert!(g == b, "{what}: drive file {name} bytes diverged");
    }
}

/// Run one workload with no pool and with every tested pool width on both
/// simulators and both pipeline lanes, each on a fresh file backend, and
/// require identical outputs and identical [`Fingerprint`]s. The compute
/// mode stays `Serial` throughout: the pool may only touch the
/// reorganization phase.
fn check_workload<T, FS, FP>(name: &str, seq_f: FS, par_f: FP)
where
    T: PartialEq + std::fmt::Debug,
    FS: Fn(&Recording<SeqEmSimulator>) -> T,
    FP: Fn(&Recording<ParEmSimulator>) -> T,
{
    for pipeline in [Pipeline::Off, Pipeline::Stream(2)] {
        // Uniprocessor simulator.
        let run_seq = |pool: Option<usize>| {
            let dir = scratch_dir();
            let mut sim = SeqEmSimulator::new(em_machine(1))
                .with_seed(77)
                .with_pipeline(pipeline)
                .with_compute_mode(ComputeMode::Serial)
                .with_file_backend(&dir);
            if let Some(w) = pool {
                sim = sim.with_compute_pool(ComputePool::new(w));
            }
            let rec = Recording::new(sim);
            let out = seq_f(&rec);
            let fp = fingerprint(&rec.take_reports(), &dir);
            std::fs::remove_dir_all(&dir).ok();
            (out, fp)
        };
        let (base_out, base_fp) = run_seq(None);
        for w in POOL_WIDTHS {
            let what = format!("{name}: seq sim, {pipeline:?}, pool w={w}");
            let (out, fp) = run_seq(Some(w));
            assert_eq!(out, base_out, "{what}: output diverged");
            assert_fingerprints_match(&base_fp, &fp, &what);
        }

        // 3-processor simulator.
        let run_par = |pool: Option<usize>| {
            let dir = scratch_dir();
            let mut sim = ParEmSimulator::new(em_machine(3))
                .with_seed(78)
                .with_pipeline(pipeline)
                .with_compute_mode(ComputeMode::Serial)
                .with_file_backend(&dir);
            if let Some(w) = pool {
                sim = sim.with_compute_pool(ComputePool::new(w));
            }
            let rec = Recording::new(sim);
            let out = par_f(&rec);
            let fp = fingerprint(&rec.take_reports(), &dir);
            std::fs::remove_dir_all(&dir).ok();
            (out, fp)
        };
        let (base_out, base_fp) = run_par(None);
        for w in POOL_WIDTHS {
            let what = format!("{name}: par sim, {pipeline:?}, pool w={w}");
            let (out, fp) = run_par(Some(w));
            assert_eq!(out, base_out, "{what}: output diverged");
            assert_fingerprints_match(&base_fp, &fp, &what);
        }
    }
}

/// Duplicate one closure body for the two `Recording<…>` types.
macro_rules! check_workload {
    ($name:expr, |$rec:ident| $body:expr) => {
        check_workload($name, |$rec| $body, |$rec| $body)
    };
}

#[test]
fn sort_is_reorg_pool_invariant() {
    let mut rng = StdRng::seed_from_u64(210);
    let items: Vec<u64> = (0..500).map(|_| rng.gen_range(0..4000)).collect();
    check_workload!("sort", |rec| cgm_sort(rec, V, items.clone()).unwrap());
}

#[test]
fn permute_is_reorg_pool_invariant() {
    let mut rng = StdRng::seed_from_u64(211);
    let n = 300;
    let items: Vec<u64> = (0..n as u64).map(|x| x * 5 + 2).collect();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    check_workload!("permute", |rec| cgm_permute(rec, V, items.clone(), &perm).unwrap());
}

/// Message-heavy program whose state is a non-commutative hash chain:
/// sensitive to inbox order, so any pool-induced reordering of the
/// reorganization phase's deliveries changes the final states.
struct ChainFold;
impl BspProgram for ChainFold {
    type State = u64;
    type Msg = u64;
    fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
        for e in mb.take_incoming() {
            *state = state
                .wrapping_mul(0x0000_0100_0000_01B3)
                .wrapping_add(((e.src as u64) << 32) ^ e.msg);
        }
        let v = mb.nprocs();
        if step < 4 {
            for j in 1..=3u64 {
                mb.send((mb.pid() + j as usize) % v, *state ^ j);
            }
            Step::Continue
        } else {
            Step::Halt
        }
    }
    fn max_state_bytes(&self) -> usize {
        124
    }
    fn max_comm_bytes(&self) -> usize {
        3 * 24
    }
}

/// A block cache in front of the backend absorbs reorganization traffic;
/// the pooled plan construction must leave every counter — including the
/// cache tallies — untouched.
#[test]
fn cached_runs_are_reorg_pool_invariant() {
    let init: Vec<u64> = (0..16u64).map(|i| i * 9 + 2).collect();
    let mut seq_base: Option<(Vec<u64>, IoStats, PhaseIo, CommLedger)> = None;
    let mut par_base: Option<(Vec<u64>, IoStats, PhaseIo, CommLedger)> = None;
    for pool in [None, Some(2), Some(8)] {
        let mut sim = SeqEmSimulator::new(tiny_machine(1)).with_seed(77).with_cache(4096);
        if let Some(w) = pool {
            sim = sim.with_compute_pool(ComputePool::new(w));
        }
        let (res, report) = sim.run(&ChainFold, init.clone()).unwrap();
        match &seq_base {
            None => {
                seq_base = Some((res.states, report.io, report.phases, report.comm));
            }
            Some((states, io, phases, comm)) => {
                assert_eq!(&res.states, states, "seq cached states diverged, pool {pool:?}");
                assert_eq!(&report.io, io, "seq cached IoStats diverged, pool {pool:?}");
                assert_eq!(&report.phases, phases, "seq cached phases diverged, pool {pool:?}");
                assert_eq!(&report.comm, comm, "seq cached ledger diverged, pool {pool:?}");
            }
        }

        let mut sim = ParEmSimulator::new(tiny_machine(3)).with_seed(78).with_cache(4096);
        if let Some(w) = pool {
            sim = sim.with_compute_pool(ComputePool::new(w));
        }
        let (res, report) = sim.run(&ChainFold, init.clone()).unwrap();
        match &par_base {
            None => {
                par_base = Some((res.states, report.io, report.phases, report.comm));
            }
            Some((states, io, phases, comm)) => {
                assert_eq!(&res.states, states, "par cached states diverged, pool {pool:?}");
                assert_eq!(&report.io, io, "par cached IoStats diverged, pool {pool:?}");
                assert_eq!(&report.phases, phases, "par cached phases diverged, pool {pool:?}");
                assert_eq!(&report.comm, comm, "par cached ledger diverged, pool {pool:?}");
            }
        }
    }
}

/// Under a seeded fault plan with retries and superstep recovery, the
/// pooled reorganization must still converge to the fault-free unpooled
/// result, with counted parallel I/O (which excludes retry and recovery
/// traffic) and the message ledger bit-identical across pool widths.
#[test]
fn faulted_recovery_is_reorg_pool_invariant() {
    use em_bsp::run_sequential;
    use em_core::RecoveryPolicy;
    use em_disk::{FaultPlan, RetryPolicy};

    let init: Vec<u64> = (0..V as u64).map(|i| i * 9 + 2).collect();
    let reference = run_sequential(&ChainFold, init.clone()).unwrap().states;
    let plan = || FaultPlan::seeded(0xF16, 4, 300, 30);

    let mut seq_base: Option<(u64, CommLedger)> = None;
    let mut par_base: Option<(u64, CommLedger)> = None;
    for pool in [None, Some(2), Some(8)] {
        let mut sim = SeqEmSimulator::new(tiny_machine(1))
            .with_seed(77)
            .with_checksums(true)
            .with_fault_plan(plan())
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(64));
        if let Some(w) = pool {
            sim = sim.with_compute_pool(ComputePool::new(w));
        }
        let (res, report) = sim.run(&ChainFold, init.clone()).unwrap();
        assert_eq!(res.states, reference, "seq EM under faults, pool {pool:?}");
        match &seq_base {
            None => seq_base = Some((report.io.parallel_ops, report.comm.clone())),
            Some((ops, ledger)) => {
                assert_eq!(report.io.parallel_ops, *ops, "seq counted ops diverged, {pool:?}");
                assert_eq!(&report.comm, ledger, "seq message ledger diverged, {pool:?}");
            }
        }

        let mut sim = ParEmSimulator::new(tiny_machine(3))
            .with_seed(78)
            .with_checksums(true)
            .with_fault_plan(plan())
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(64));
        if let Some(w) = pool {
            sim = sim.with_compute_pool(ComputePool::new(w));
        }
        let (res, report) = sim.run(&ChainFold, init.clone()).unwrap();
        assert_eq!(res.states, reference, "par EM under faults, pool {pool:?}");
        match &par_base {
            None => par_base = Some((report.io.parallel_ops, report.comm.clone())),
            Some((ops, ledger)) => {
                assert_eq!(report.io.parallel_ops, *ops, "par counted ops diverged, {pool:?}");
                assert_eq!(&report.comm, ledger, "par message ledger diverged, {pool:?}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// AutoTuner resolution.
// ---------------------------------------------------------------------

/// Supersteps of the [`Diffuse`] workload below.
const SUPERSTEPS: usize = 5;

/// State-dependent across supersteps, so a wrong resume barrier or a
/// divergent resolution changes the final states.
struct Diffuse;
impl BspProgram for Diffuse {
    type State = u64;
    type Msg = u64;
    fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
        let v = mb.nprocs();
        for e in mb.take_incoming() {
            *state = state.wrapping_add(e.msg);
        }
        if step + 1 < SUPERSTEPS {
            mb.send((mb.pid() + 1) % v, *state + step as u64);
            mb.send((mb.pid() + v - 1) % v, state.wrapping_mul(3));
            Step::Continue
        } else {
            Step::Halt
        }
    }
    fn max_state_bytes(&self) -> usize {
        124
    }
    fn max_comm_bytes(&self) -> usize {
        2 * 24
    }
}

fn init_states(v: usize) -> Vec<u64> {
    (0..v as u64).map(|x| x * 13 + 5).collect()
}

/// Pinned tuner inputs: 4 cores, a 40:1 compute/fetch ratio and a 64 KiB
/// footprint resolve — by the documented policy — to `Threaded(4)`,
/// `Stream(2)` and a 128 KiB cache, independent of the host.
fn pinned_tuner() -> AutoTuner {
    AutoTuner::default().with_inputs(TuneInputs {
        cores: 4,
        compute_per_fetch_x16: 640,
        footprint_bytes: 1 << 16,
    })
}

/// What [`pinned_tuner`] must resolve to, byte for byte.
const PINNED_LINE: &str = "compute=threaded(4) pipeline=stream(2) cache=131072 \
                           cores=4 ratio_x16=640 footprint=65536 source=explicit";

/// An all-`Auto` simulator over [`pinned_tuner`], file-backed in `dir`.
fn auto_seq(dir: &Path) -> SeqEmSimulator {
    SeqEmSimulator::new(tiny_machine(1))
        .with_seed(77)
        .with_compute_mode(ComputeMode::Auto)
        .with_pipeline(Pipeline::Auto)
        .with_auto_cache(true)
        .with_tuner(pinned_tuner())
        .with_file_backend(dir)
}

/// The manually configured twin of what [`pinned_tuner`] resolves.
fn manual_seq(dir: &Path) -> SeqEmSimulator {
    SeqEmSimulator::new(tiny_machine(1))
        .with_seed(77)
        .with_compute_mode(ComputeMode::Threaded(4))
        .with_pipeline(Pipeline::Stream(2))
        .with_cache(131072)
        .with_file_backend(dir)
}

/// `Auto` runs record their resolution, resolve identically on
/// identically-seeded reruns, and are bit-identical in effect to the
/// manually configured twin — on both simulators.
#[test]
fn auto_resolution_matches_manual_twin_and_reruns() {
    let init = init_states(16);

    // Uniprocessor simulator.
    let dir_auto = scratch_dir();
    let sim = auto_seq(&dir_auto);
    let (a, ra) = sim.run(&Diffuse, init.clone()).unwrap();
    let rc = ra.resolved_config.expect("Auto run must record its resolution");
    assert_eq!(rc.deterministic_line(), PINNED_LINE);
    let (a2, ra2) = sim.run(&Diffuse, init.clone()).unwrap();
    assert_eq!(a2.states, a.states, "seq rerun states diverged");
    assert_eq!(ra2.resolved_config, Some(rc), "seq rerun resolved differently");
    let fp_auto = fingerprint(&[ra], &dir_auto);

    let dir_manual = scratch_dir();
    let (b, rb) = manual_seq(&dir_manual).run(&Diffuse, init.clone()).unwrap();
    assert!(rb.resolved_config.is_none(), "manual run must not record a resolution");
    assert_eq!(b.states, a.states, "seq auto vs manual states diverged");
    let fp_manual = fingerprint(&[rb], &dir_manual);
    assert_fingerprints_match(&fp_manual, &fp_auto, "seq auto vs manual twin");
    std::fs::remove_dir_all(&dir_auto).ok();
    std::fs::remove_dir_all(&dir_manual).ok();

    // 3-processor simulator.
    let auto_par = |dir: &Path| {
        ParEmSimulator::new(tiny_machine(3))
            .with_seed(78)
            .with_compute_mode(ComputeMode::Auto)
            .with_pipeline(Pipeline::Auto)
            .with_auto_cache(true)
            .with_tuner(pinned_tuner())
            .with_file_backend(dir)
    };
    let dir_auto = scratch_dir();
    let sim = auto_par(&dir_auto);
    let (a, ra) = sim.run(&Diffuse, init.clone()).unwrap();
    let rc = ra.resolved_config.expect("par Auto run must record its resolution");
    assert_eq!(rc.deterministic_line(), PINNED_LINE);
    let (a2, ra2) = sim.run(&Diffuse, init.clone()).unwrap();
    assert_eq!(a2.states, a.states, "par rerun states diverged");
    assert_eq!(ra2.resolved_config, Some(rc), "par rerun resolved differently");
    let fp_auto = fingerprint(&[ra], &dir_auto);

    let dir_manual = scratch_dir();
    let (b, rb) = ParEmSimulator::new(tiny_machine(3))
        .with_seed(78)
        .with_compute_mode(ComputeMode::Threaded(4))
        .with_pipeline(Pipeline::Stream(2))
        .with_cache(131072)
        .with_file_backend(&dir_manual)
        .run(&Diffuse, init.clone())
        .unwrap();
    assert!(rb.resolved_config.is_none(), "par manual run must not record a resolution");
    assert_eq!(b.states, a.states, "par auto vs manual states diverged");
    let fp_manual = fingerprint(&[rb], &dir_manual);
    assert_fingerprints_match(&fp_manual, &fp_auto, "par auto vs manual twin");
    std::fs::remove_dir_all(&dir_auto).ok();
    std::fs::remove_dir_all(&dir_manual).ok();
}

/// A crashed `Auto` run resolves again on `resume()` — from the manifest,
/// before any disks are rebuilt — to the same configuration, and the
/// resumed run is bit-identical to the uninterrupted one.
#[test]
fn auto_resolution_survives_crash_and_resume() {
    let init = init_states(16);

    let dir_a = scratch_dir();
    let (a, ra) = auto_seq(&dir_a).with_checkpointing(true).run(&Diffuse, init.clone()).unwrap();
    let rc = ra.resolved_config.expect("uninterrupted Auto run must record its resolution");
    assert_eq!(rc.deterministic_line(), PINNED_LINE);

    let dir_b = scratch_dir();
    let sim = auto_seq(&dir_b).with_checkpointing(true);
    let err = sim
        .clone()
        .with_kill_point(KillPoint::AtBarrier(2))
        .run(&Diffuse, init.clone())
        .unwrap_err();
    assert!(matches!(err, EmError::Killed { .. }), "{err}");
    let (b, rb) = sim.resume(&Diffuse).unwrap();
    assert_eq!(b.states, a.states, "resumed Auto states diverged");
    assert_eq!(rb.resolved_config, Some(rc), "resume() resolved differently");
    assert_eq!(rb.io.parallel_ops, ra.io.parallel_ops, "resumed counted ops diverged");
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// The service resolves a tenant's `Auto` requests once, at admission —
/// so budgets and pool sharing see the tuned configuration — and logs the
/// resolution line on the lease, the tenant record, and the deterministic
/// ledger. Manual tenants record nothing.
#[test]
fn service_admission_resolves_auto_tenants_into_the_ledger() {
    let machine = tiny_machine(1);
    let service = SimService::new(ServiceConfig::new(2, 64, 8192, 1 << 24));

    let tenant = SeqEmSimulator::new(machine)
        .with_seed(5)
        .with_compute_mode(ComputeMode::Auto)
        .with_pipeline(Pipeline::Auto)
        .with_auto_cache(true)
        .with_tuner(pinned_tuner());
    let spec = JobSpec::new("auto", 5, machine, 16).with_budgets(128, 256).with_tracks(1024);
    let lease = service.admit_with(spec, tenant).unwrap();
    assert_eq!(lease.resolved_line(), Some(PINNED_LINE), "lease must carry the resolution");
    lease.execute(&Diffuse, init_states(16)).unwrap();
    let record = lease.complete();
    assert_eq!(record.resolved.as_deref(), Some(PINNED_LINE), "record must carry the resolution");

    let manual = SeqEmSimulator::new(machine).with_seed(6);
    let spec = JobSpec::new("manual", 6, machine, 16).with_budgets(128, 256).with_tracks(1024);
    let lease = service.admit_with(spec, manual).unwrap();
    assert_eq!(lease.resolved_line(), None, "manual tenant must not resolve");
    lease.execute(&Diffuse, init_states(16)).unwrap();
    assert!(lease.complete().resolved.is_none());

    let json = service.report().deterministic_json();
    assert!(
        json.contains(&format!("\"resolved\":{PINNED_LINE:?}")),
        "ledger must log the auto tenant's resolution: {json}"
    );
    assert!(
        json.contains("\"resolved\":null"),
        "ledger must log the manual tenant's null resolution: {json}"
    );
}
