//! Multi-tenant service contract tests (DESIGN.md §3.2.8):
//!
//! * **Metering invariant** — a tenant's counted per-stage `IoStats` and
//!   final-state fingerprint are bit-identical to the same job run solo
//!   on a private `DiskArray`, even with concurrent co-tenants hammering
//!   the shared substrate.
//! * **Admission control** — over-budget μ reservations, γ envelope
//!   overflow and track-region exhaustion are rejected with the right
//!   typed [`AdmissionError`] and never disturb admitted tenants.
//! * **Ledger determinism** — identically-seeded service runs serialize
//!   to byte-identical `ServiceReport` ledgers regardless of admission
//!   interleaving.
//! * **Re-entrancy** — the constructor/run split of the simulators: one
//!   simulator value executes many runs, on built or borrowed arrays.

use em_algos::prefix::cgm_prefix_sums;
use em_algos::sort::cgm_sort;
use em_bsp::{BspProgram, Mailbox, Step};
use em_core::{EmMachine, ParEmSimulator, SeqEmSimulator};
use em_service::{AdmissionError, JobSpec, ServiceConfig, SimService, SoloRunner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const D: usize = 2;
const B: usize = 512;

fn machine() -> EmMachine {
    EmMachine::uniprocessor(1 << 16, D, B, 1)
}

fn service(tracks: usize, budget: usize) -> SimService {
    SimService::new(ServiceConfig::new(D, B, tracks, budget))
}

fn spec(name: &str, seed: u64, v: usize) -> JobSpec {
    JobSpec::new(name, seed, machine(), v).with_budgets(1 << 14, 1 << 14).with_tracks(512)
}

fn input(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

#[test]
fn concurrent_tenants_are_bit_identical_to_solo_runs() {
    let service = service(4096, 1 << 24);
    let jobs: Vec<(String, u64, usize)> =
        (0..6).map(|i| (format!("job-{i}"), 100 + i as u64, 8)).collect();

    std::thread::scope(|scope| {
        for (name, seed, v) in &jobs {
            let service = service.clone();
            scope.spawn(move || {
                // Solo reference on a private array.
                let solo = SoloRunner::new(SeqEmSimulator::new(machine()).with_seed(*seed));
                let solo_sorted = cgm_sort(&solo, *v, input(300, *seed)).unwrap();
                let solo_sums = cgm_prefix_sums(&solo, *v, input(100, seed ^ 1)).unwrap();
                let (solo_stages, solo_fp) = solo.finish();

                // The same two-stage pipeline as a service tenant, with
                // five co-tenants interleaving on the shared media.
                let lease = service.admit(spec(name, *seed, *v)).unwrap();
                let svc_sorted = cgm_sort(&lease, *v, input(300, *seed)).unwrap();
                let svc_sums = cgm_prefix_sums(&lease, *v, input(100, seed ^ 1)).unwrap();
                let record = lease.complete();

                assert_eq!(svc_sorted, solo_sorted, "{name}: sorted output differs");
                assert_eq!(svc_sums, solo_sums, "{name}: prefix sums differ");
                assert_eq!(record.stages.len(), solo_stages.len());
                for (i, (svc, solo)) in record.stages.iter().zip(&solo_stages).enumerate() {
                    assert_eq!(svc.io, solo.io, "{name} stage {i}: counted IoStats differ");
                    assert_eq!(svc.lambda, solo.lambda, "{name} stage {i}: lambda differs");
                }
                assert_eq!(record.state_fingerprint, solo_fp, "{name}: fingerprint differs");
            });
        }
    });

    assert_eq!(service.report().records().len(), jobs.len());
    assert_eq!(service.active_tenants(), 0);
    assert_eq!(service.reserved_bytes(), 0);
}

#[test]
fn over_budget_mu_is_rejected_without_disturbing_admitted_tenants() {
    // Budget fits one declared v*mu+gamma reservation, not two.
    let one = 8 * (1 << 14) + (1 << 14);
    let service = service(4096, one + one / 2);
    let admitted = service.admit(spec("resident", 7, 8)).unwrap();

    let err = service.admit(spec("greedy", 8, 8)).unwrap_err();
    assert!(matches!(err, AdmissionError::BudgetExceeded { .. }));

    // The resident tenant still runs and meters exactly like a solo run.
    let solo = SoloRunner::new(SeqEmSimulator::new(machine()).with_seed(7));
    let expect = cgm_sort(&solo, 8, input(200, 7)).unwrap();
    let got = cgm_sort(&admitted, 8, input(200, 7)).unwrap();
    assert_eq!(got, expect);
    let (solo_stages, solo_fp) = solo.finish();
    let record = admitted.complete();
    assert_eq!(record.stages[0].io, solo_stages[0].io);
    assert_eq!(record.state_fingerprint, solo_fp);
}

#[test]
fn gamma_envelope_overflow_is_rejected_at_admission() {
    let service =
        SimService::new(ServiceConfig::new(D, B, 4096, 1 << 24).with_max_comm_bytes(1 << 10));
    let resident = service
        .admit(
            JobSpec::new("resident", 1, machine(), 4)
                .with_budgets(1 << 12, 1 << 10)
                .with_tracks(256),
        )
        .unwrap();

    let err = service
        .admit(
            JobSpec::new("chatty", 2, machine(), 4)
                .with_budgets(1 << 12, (1 << 10) + 1)
                .with_tracks(256),
        )
        .unwrap_err();
    assert!(
        matches!(err, AdmissionError::CommEnvelopeExceeded { gamma, max } if gamma == (1 << 10) + 1 && max == 1 << 10)
    );

    // Rejection held no resources.
    assert_eq!(service.active_tenants(), 1);
    resident.complete();
    assert_eq!(service.active_tenants(), 0);
}

#[test]
fn region_exhaustion_is_rejected_and_rolls_back_cleanly() {
    let service = service(1024, 1 << 24);
    let resident = service.admit(spec("resident", 3, 8).with_tracks(800)).unwrap();
    let reserved = service.reserved_bytes();

    let err = service.admit(spec("big", 4, 8).with_tracks(400)).unwrap_err();
    assert!(matches!(err, AdmissionError::RegionExhausted { requested: 400, free: 224 }));
    // The failed admission leaked neither budget nor slots nor tracks.
    assert_eq!(service.reserved_bytes(), reserved);
    assert_eq!(service.active_tenants(), 1);
    assert_eq!(service.tracks_free(), 224);

    // A right-sized job still fits alongside the resident.
    let small = service.admit(spec("small", 5, 8).with_tracks(224)).unwrap();
    small.complete();
    resident.complete();
    assert_eq!(service.tracks_free(), 1024);
}

#[test]
fn ledger_is_byte_identical_across_identically_seeded_runs() {
    let run = || {
        let service = service(4096, 1 << 24);
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let service = service.clone();
                scope.spawn(move || {
                    let lease = service.admit(spec(&format!("t{i}"), i, 8)).unwrap();
                    cgm_sort(&lease, 8, input(150, i)).unwrap();
                    lease.complete();
                });
            }
        });
        service.report().deterministic_json()
    };
    let first = run();
    assert!(!first.is_empty());
    assert_eq!(first, run(), "ServiceReport ledger must not depend on scheduling");
}

struct Scale(u64);
impl BspProgram for Scale {
    type State = u64;
    type Msg = u64;
    fn superstep(&self, _: usize, _: &mut Mailbox<u64>, s: &mut u64) -> Step {
        *s *= self.0;
        Step::Halt
    }
    fn max_state_bytes(&self) -> usize {
        8
    }
}

#[test]
fn simulators_are_reentrant_and_run_on_borrowed_arrays() {
    // One simulator value, many runs: no consumed-on-run state.
    let sim = SeqEmSimulator::new(machine()).with_seed(11);
    let (a, ra) = sim.run(&Scale(2), vec![1, 2, 3, 4]).unwrap();
    let (b, rb) = sim.run(&Scale(2), vec![1, 2, 3, 4]).unwrap();
    assert_eq!(a.states, b.states);
    assert_eq!(ra.io, rb.io);

    // run() == build_disks() + run_on(), and a reused array stays a
    // clean per-run meter.
    let mut disks = sim.build_disks().unwrap();
    let (c, rc) = sim.run_on(&mut disks, &Scale(2), vec![1, 2, 3, 4]).unwrap();
    let (d, rd) = sim.run_on(&mut disks, &Scale(3), vec![1, 2, 3, 4]).unwrap();
    assert_eq!(c.states, a.states);
    assert_eq!(rc.io, ra.io);
    assert_eq!(d.states, vec![3, 6, 9, 12]);
    assert_eq!(rd.io, rc.io, "identical-shape runs meter identically on a reused array");

    // A shape-mismatched array is a typed error, not a corruption.
    let other = SeqEmSimulator::new(EmMachine::uniprocessor(1 << 16, 4, B, 1));
    let mut wrong = other.build_disks().unwrap();
    assert!(sim.run_on(&mut wrong, &Scale(2), vec![1]).is_err());

    // The parallel simulator has the same split.
    let mut pm = machine();
    pm.p = 2;
    pm.router = em_bsp::BspStarParams { p: 2, g: 1.0, b: B, l: 1.0 };
    let psim = ParEmSimulator::new(pm).with_seed(11);
    let (e, _) = psim.run(&Scale(2), (0..8u64).collect()).unwrap();
    let arrays = psim.build_disks().unwrap();
    let (f, _) = psim.run_on(arrays, &Scale(2), (0..8u64).collect()).unwrap();
    assert_eq!(e.states, f.states);
    // Wrong array count is a typed error.
    let mut arrays = psim.build_disks().unwrap();
    arrays.pop();
    assert!(psim.run_on(arrays, &Scale(2), (0..8u64).collect()).is_err());
}
