//! Failure injection across the stack: misdeclared budgets, model
//! violations, capacity limits and malformed inputs must surface as typed
//! errors, never as silent corruption or hangs.

use em_bsp::{BspError, BspProgram, BspStarParams, Mailbox, Step};
use em_core::{EmError, EmMachine, ParEmSimulator, SeqEmSimulator};
use em_disk::{Block, DiskArray, DiskConfig, DiskError};

struct Noisy {
    mu_lie: usize,
    gamma_lie: usize,
    grow_to: usize,
    fan: usize,
}

impl BspProgram for Noisy {
    type State = Vec<u8>;
    type Msg = Vec<u8>;
    fn superstep(&self, step: usize, mb: &mut Mailbox<Vec<u8>>, state: &mut Vec<u8>) -> Step {
        mb.take_incoming();
        if step == 0 {
            state.resize(self.grow_to, 7);
            for f in 0..self.fan {
                mb.send(f % mb.nprocs(), vec![1; 64]);
            }
            Step::Continue
        } else {
            Step::Halt
        }
    }
    fn max_state_bytes(&self) -> usize {
        self.mu_lie
    }
    fn max_comm_bytes(&self) -> usize {
        self.gamma_lie
    }
}

fn machine(p: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: 1 << 14,
        d: 2,
        b_bytes: 256,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 256, l: 1.0 },
    }
}

#[test]
fn context_overflow_is_typed_on_both_simulators() {
    let prog = Noisy { mu_lie: 64, gamma_lie: 4096, grow_to: 500, fan: 0 };
    let err = SeqEmSimulator::new(machine(1)).run(&prog, vec![vec![]; 4]).unwrap_err();
    assert!(matches!(err, EmError::ContextOverflow { .. }), "{err}");
    let err = ParEmSimulator::new(machine(2)).run(&prog, vec![vec![]; 4]).unwrap_err();
    assert!(matches!(err, EmError::ContextOverflow { .. }), "{err}");
}

#[test]
fn comm_budget_violation_is_typed_on_both_simulators() {
    let prog = Noisy { mu_lie: 600, gamma_lie: 100, grow_to: 10, fan: 12 };
    let err = SeqEmSimulator::new(machine(1)).run(&prog, vec![vec![]; 4]).unwrap_err();
    assert!(matches!(err, EmError::CommBudgetExceeded { .. }), "{err}");
    let err = ParEmSimulator::new(machine(2)).run(&prog, vec![vec![]; 4]).unwrap_err();
    assert!(matches!(err, EmError::CommBudgetExceeded { .. }), "{err}");
}

#[test]
fn machine_model_violations_are_rejected() {
    // M < D·B violates the model's "one block from each disk" minimum.
    let bad = EmMachine::uniprocessor(256, 4, 256, 1);
    let prog = Noisy { mu_lie: 64, gamma_lie: 256, grow_to: 10, fan: 1 };
    let err = SeqEmSimulator::new(bad).run(&prog, vec![vec![]; 2]).unwrap_err();
    assert!(matches!(err, EmError::InvalidConfig(_)), "{err}");
    // B too small for block headers.
    let bad = EmMachine::uniprocessor(1 << 14, 2, 16, 1);
    let err = SeqEmSimulator::new(bad).run(&prog, vec![vec![]; 2]).unwrap_err();
    assert!(matches!(err, EmError::InvalidConfig(_)), "{err}");
}

#[test]
fn superstep_limit_is_typed_on_both_simulators() {
    struct Forever;
    impl BspProgram for Forever {
        type State = u8;
        type Msg = u8;
        fn superstep(&self, _: usize, _: &mut Mailbox<u8>, _: &mut u8) -> Step {
            Step::Continue
        }
        fn max_state_bytes(&self) -> usize {
            1
        }
    }
    let err = SeqEmSimulator::new(machine(1))
        .with_max_supersteps(7)
        .run(&Forever, vec![0u8; 2])
        .unwrap_err();
    assert!(matches!(err, EmError::Bsp(BspError::SuperstepLimit { limit: 7 })), "{err}");
    let err = ParEmSimulator::new(machine(2))
        .with_max_supersteps(7)
        .run(&Forever, vec![0u8; 4])
        .unwrap_err();
    assert!(matches!(err, EmError::Bsp(BspError::SuperstepLimit { limit: 7 })), "{err}");
}

#[test]
fn bad_destination_is_typed_on_both_simulators() {
    struct Bad;
    impl BspProgram for Bad {
        type State = u8;
        type Msg = u8;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u8>, _: &mut u8) -> Step {
            if step == 0 {
                mb.send(1_000_000, 1);
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            1
        }
    }
    let err = SeqEmSimulator::new(machine(1)).run(&Bad, vec![0u8; 2]).unwrap_err();
    assert!(matches!(err, EmError::Bsp(BspError::InvalidDestination { .. })), "{err}");
    let err = ParEmSimulator::new(machine(2)).run(&Bad, vec![0u8; 4]).unwrap_err();
    assert!(matches!(err, EmError::Bsp(BspError::InvalidDestination { .. })), "{err}");
}

#[test]
fn disk_capacity_limit_fires() {
    let mut arr = DiskArray::new_memory(DiskConfig::new(2, 64).unwrap()).with_capacity_limit(4);
    for t in 0..4 {
        arr.write_block(0, t, Block::zeroed(64)).unwrap();
    }
    let err = arr.write_block(0, 4, Block::zeroed(64)).unwrap_err();
    assert!(matches!(err, DiskError::CapacityExceeded { disk: 0, max_tracks: 4 }));
}

#[test]
fn algorithm_drivers_reject_malformed_inputs() {
    use em_algos::AlgoError;
    use em_bsp::SeqExecutor;
    // Non-permutation.
    assert!(matches!(
        em_algos::permute::cgm_permute(&SeqExecutor, 2, vec![1u8, 2], &[0, 0]),
        Err(AlgoError::Input(_))
    ));
    // Wrong matrix shape.
    assert!(em_algos::transpose::cgm_transpose(&SeqExecutor, 2, 3, 3, vec![0u8; 8]).is_err());
    // Tree with wrong edge count.
    assert!(em_algos::graph::euler::cgm_euler_tree(&SeqExecutor, 2, 5, &[(0, 1)], 0).is_err());
    // Out-of-range successor.
    assert!(em_algos::graph::list_ranking::cgm_list_rank(&SeqExecutor, 2, &[7], &[1]).is_err());
}
