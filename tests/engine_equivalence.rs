//! Engine differential tests: [`em_disk::EngineKind::Uring`] must be
//! **byte-for-byte** indistinguishable from the threaded engine — same
//! final outputs, same message ledger, same counted I/O (total and per
//! phase), and the same bytes on the drive files — on both EM simulators,
//! with and without the streaming pipeline, and under seeded fault
//! injection with superstep recovery.
//!
//! The engine is a pure wall-clock knob: counting happens in `DiskArray`
//! at submission time, *above* the backend, and the io_uring engine keeps
//! the per-drive FIFO contract of the one-worker-per-drive engine, so the
//! fingerprints below are equal by construction. This suite pins that
//! construction against regressions.
//!
//! Every test skips cleanly (with a note on stderr) when io_uring is not
//! available — feature disabled, non-Linux, or a kernel that refuses
//! rings — so the suite is safe in any CI lane.

use em_algos::prefix::cgm_prefix_sums;
use em_algos::sort::cgm_sort;
use em_bsp::{BspStarParams, CommLedger};
use em_core::{
    ComputeMode, CostReport, EmMachine, ParEmSimulator, PhaseIo, Recording, SeqEmSimulator,
};
use em_disk::{EngineKind, IoStats, Pipeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const V: usize = 8;

/// A machine small enough that the EM simulators page contexts in groups.
fn em_machine(p: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: 1 << 16,
        d: 4,
        b_bytes: 256,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 256, l: 1.0 },
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory for one file-backed run.
fn scratch_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("em-engine-eq-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// True when the kernel-ring engine can actually run here; tests return
/// early (printing a skip note) otherwise.
fn uring_or_skip(test: &str) -> bool {
    if em_disk::uring_available() {
        return true;
    }
    eprintln!("{test}: io_uring unavailable (feature off or kernel refusal); skipping");
    false
}

/// Everything about a run that must not depend on [`EngineKind`]: the
/// per-stage counted I/O, the per-phase operation counts, the message
/// ledger, λ, and the raw bytes left on the drive files.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    io: Vec<IoStats>,
    phases: Vec<PhaseIo>,
    comm: Vec<CommLedger>,
    lambda: Vec<usize>,
    drive_bytes: Vec<(String, Vec<u8>)>,
}

fn fingerprint(reports: &[CostReport], dir: &Path) -> Fingerprint {
    Fingerprint {
        io: reports.iter().map(|r| r.io.clone()).collect(),
        phases: reports.iter().map(|r| r.phases.clone()).collect(),
        comm: reports.iter().map(|r| r.comm.clone()).collect(),
        lambda: reports.iter().map(|r| r.lambda).collect(),
        drive_bytes: drive_bytes(dir),
    }
}

/// All regular files under `dir` (recursively), path-sorted, with their
/// contents. The simulators sync at every superstep boundary, so after
/// `run()` the files hold the final committed image.
fn drive_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&p).unwrap()));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn assert_fingerprints_match(base: &Fingerprint, got: &Fingerprint, what: &str) {
    assert_eq!(got.io, base.io, "{what}: counted IoStats diverged");
    assert_eq!(got.phases, base.phases, "{what}: per-phase op counts diverged");
    assert_eq!(got.comm, base.comm, "{what}: message ledger diverged");
    assert_eq!(got.lambda, base.lambda, "{what}: λ diverged");
    // Compare drive bytes without letting a failure dump whole drive files.
    let base_names: Vec<&str> = base.drive_bytes.iter().map(|(n, _)| n.as_str()).collect();
    let got_names: Vec<&str> = got.drive_bytes.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(got_names, base_names, "{what}: drive file set diverged");
    for ((name, b), (_, g)) in base.drive_bytes.iter().zip(&got.drive_bytes) {
        assert!(g == b, "{what}: drive file {name} bytes diverged");
    }
}

/// Run one workload under both engines on both simulators and two
/// pipeline lanes, each on a fresh file backend, and require identical
/// outputs and identical [`Fingerprint`]s.
fn check_workload<T, FS, FP>(name: &str, seq_f: FS, par_f: FP)
where
    T: PartialEq + std::fmt::Debug,
    FS: Fn(&Recording<SeqEmSimulator>) -> T,
    FP: Fn(&Recording<ParEmSimulator>) -> T,
{
    for pipeline in [Pipeline::Off, Pipeline::Stream(2)] {
        // Uniprocessor simulator.
        let run_seq = |engine: EngineKind| {
            let dir = scratch_dir();
            let rec = Recording::new(
                SeqEmSimulator::new(em_machine(1))
                    .with_seed(77)
                    .with_pipeline(pipeline)
                    .with_compute_mode(ComputeMode::Threaded(2))
                    .with_engine(engine)
                    .with_file_backend(&dir),
            );
            let out = seq_f(&rec);
            let fp = fingerprint(&rec.take_reports(), &dir);
            std::fs::remove_dir_all(&dir).ok();
            (out, fp)
        };
        let (base_out, base_fp) = run_seq(EngineKind::Threaded);
        let what = format!("{name}: seq sim, {pipeline:?}, uring");
        let (out, fp) = run_seq(EngineKind::Uring);
        assert_eq!(out, base_out, "{what}: output diverged");
        assert_fingerprints_match(&base_fp, &fp, &what);

        // 3-processor simulator.
        let run_par = |engine: EngineKind| {
            let dir = scratch_dir();
            let rec = Recording::new(
                ParEmSimulator::new(em_machine(3))
                    .with_seed(78)
                    .with_pipeline(pipeline)
                    .with_compute_mode(ComputeMode::Threaded(2))
                    .with_engine(engine)
                    .with_file_backend(&dir),
            );
            let out = par_f(&rec);
            let fp = fingerprint(&rec.take_reports(), &dir);
            std::fs::remove_dir_all(&dir).ok();
            (out, fp)
        };
        let (base_out, base_fp) = run_par(EngineKind::Threaded);
        let what = format!("{name}: par sim, {pipeline:?}, uring");
        let (out, fp) = run_par(EngineKind::Uring);
        assert_eq!(out, base_out, "{what}: output diverged");
        assert_fingerprints_match(&base_fp, &fp, &what);
    }
}

/// Duplicate one closure body for the two `Recording<…>` types.
macro_rules! check_workload {
    ($name:expr, |$rec:ident| $body:expr) => {
        check_workload($name, |$rec| $body, |$rec| $body)
    };
}

#[test]
fn sort_is_engine_invariant() {
    if !uring_or_skip("sort_is_engine_invariant") {
        return;
    }
    let mut rng = StdRng::seed_from_u64(300);
    let items: Vec<u64> = (0..500).map(|_| rng.gen_range(0..4000)).collect();
    check_workload!("sort", |rec| cgm_sort(rec, V, items.clone()).unwrap());
}

#[test]
fn prefix_sums_are_engine_invariant() {
    if !uring_or_skip("prefix_sums_are_engine_invariant") {
        return;
    }
    let mut rng = StdRng::seed_from_u64(301);
    let items: Vec<u64> = (0..400).map(|_| rng.gen_range(0..90)).collect();
    check_workload!("prefix", |rec| cgm_prefix_sums(rec, V, items.clone()).unwrap());
}

/// Under a seeded fault plan with retries and superstep recovery, the
/// kernel-ring engine must converge to the fault-free threaded result,
/// with counted parallel I/O (which excludes retry and recovery traffic)
/// and the ledger bit-identical across engines.
#[test]
fn faulted_recovery_is_engine_invariant() {
    use em_bsp::{BspProgram, Mailbox, Step};
    use em_core::RecoveryPolicy;
    use em_disk::{FaultPlan, RetryPolicy};

    if !uring_or_skip("faulted_recovery_is_engine_invariant") {
        return;
    }

    struct ChainFold;
    impl BspProgram for ChainFold {
        type State = u64;
        type Msg = u64;
        fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
            for e in mb.take_incoming() {
                // Non-commutative hash chain: sensitive to inbox order, so
                // any engine- or replay-induced reordering changes the
                // state.
                *state = state
                    .wrapping_mul(0x0000_0100_0000_01B3)
                    .wrapping_add(((e.src as u64) << 32) ^ e.msg);
            }
            let v = mb.nprocs();
            if step < 3 {
                mb.send((mb.pid() + 1 + step) % v, *state ^ step as u64);
                Step::Continue
            } else {
                Step::Halt
            }
        }
        fn max_state_bytes(&self) -> usize {
            8
        }
        fn max_comm_bytes(&self) -> usize {
            64
        }
    }

    let run = |engine: EngineKind| {
        let dir = scratch_dir();
        let sim = SeqEmSimulator::new(em_machine(1))
            .with_seed(90)
            .with_compute_mode(ComputeMode::Threaded(2))
            .with_engine(engine)
            .with_file_backend(&dir)
            .with_fault_plan(FaultPlan::seeded(0xF16, 4, 300, 30))
            .with_retry(RetryPolicy::new(4))
            .with_recovery(RecoveryPolicy::new(64));
        let (res, report) = sim.run(&ChainFold, (0..16u64).collect()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (res.states, report.io, report.phases, report.comm)
    };
    let threaded = run(EngineKind::Threaded);
    let uring = run(EngineKind::Uring);
    assert_eq!(uring.0, threaded.0, "faulted recovery: states diverged across engines");
    assert_eq!(uring.1, threaded.1, "faulted recovery: counted IoStats diverged");
    assert_eq!(uring.2, threaded.2, "faulted recovery: per-phase ops diverged");
    assert_eq!(uring.3, threaded.3, "faulted recovery: ledger diverged");
}
