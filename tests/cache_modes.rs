//! Block-cache differential tests: [`em_disk::BlockCacheBackend`] enabled
//! via `with_cache` must be **byte-for-byte** indistinguishable from a
//! cache-off run — same final outputs, same message ledger, same counted
//! I/O (total and per phase, with only the two absorbed-traffic tallies
//! `cache_hit_blocks`/`cache_absorbed_writes` masked), and the same bytes
//! on the drive files — across both EM simulators, both pipeline modes,
//! `ComputeMode::{Serial, Threaded(2)}`, and under seeded fault injection
//! with retries and superstep replay.
//!
//! The cache sits *above* the retry/checksum/fault layers, so enabling it
//! changes the raw per-drive operation sequence those layers see. The
//! cross-cache fault lane therefore pins its faults as transients at low
//! per-drive op indices that both runs are guaranteed to consume, with a
//! retry budget that absorbs every one — the only regime in which the
//! `FaultReport` itself is comparable bit for bit. A separate test drives
//! the superstep-replay path through a warm cache.

use em_algos::sort::cgm_sort;
use em_bsp::{BspStarParams, CommLedger};
use em_core::{
    ComputeMode, CostReport, EmMachine, ParEmSimulator, PhaseIo, Recording, SeqEmSimulator,
};
use em_disk::{IoStats, Pipeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const V: usize = 8;

/// Seeded-fault-schedule seed for the replay test, externally sweepable
/// via `EM_SIM_FAULT_SEED` (decimal or `0x`-hex) like the
/// `tests/fault_recovery.rs` suite; its assertions are unconditional, so
/// quiet sweep seeds stay green.
fn fault_seed() -> u64 {
    match std::env::var("EM_SIM_FAULT_SEED") {
        Ok(raw) => {
            let s = raw.trim();
            s.strip_prefix("0x")
                .map(|hex| u64::from_str_radix(hex, 16))
                .unwrap_or_else(|| s.parse())
                .expect("EM_SIM_FAULT_SEED must be decimal or 0x-hex")
        }
        Err(_) => 0xF16,
    }
}

/// Cache capacities under test: one barely past a single track (heavy
/// deterministic eviction) and one holding the whole working set.
const CACHES: [usize; 2] = [2 * 256, 1 << 16];

/// A machine small enough that the EM simulators page contexts in groups.
fn em_machine(p: usize) -> EmMachine {
    EmMachine {
        p,
        m_bytes: 1 << 16,
        d: 4,
        b_bytes: 256,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 256, l: 1.0 },
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory for one file-backed run.
fn scratch_dir() -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("em-cache-modes-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Everything about a run that must not depend on the cache knob: the
/// per-stage counted I/O (cache tallies masked out), the per-phase
/// operation counts, the message ledger, λ, and the raw bytes left on the
/// drive files after the final barrier flush.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    io: Vec<IoStats>,
    phases: Vec<PhaseIo>,
    comm: Vec<CommLedger>,
    lambda: Vec<usize>,
    drive_bytes: Vec<(String, Vec<u8>)>,
}

fn fingerprint(reports: &[CostReport], dir: &Path) -> Fingerprint {
    Fingerprint {
        io: reports
            .iter()
            .map(|r| {
                let mut io = r.io.clone();
                io.cache_hit_blocks = 0;
                io.cache_absorbed_writes = 0;
                io
            })
            .collect(),
        phases: reports.iter().map(|r| r.phases.clone()).collect(),
        comm: reports.iter().map(|r| r.comm.clone()).collect(),
        lambda: reports.iter().map(|r| r.lambda).collect(),
        drive_bytes: drive_bytes(dir),
    }
}

/// All regular files under `dir` (recursively), path-sorted, with their
/// contents. The simulators sync — and the cache therefore flushes — at
/// every superstep boundary, so after `run()` the files hold the final
/// committed image with no dirty block left behind.
fn drive_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.push((rel, std::fs::read(&p).unwrap()));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn assert_fingerprints_match(base: &Fingerprint, got: &Fingerprint, what: &str) {
    assert_eq!(got.io, base.io, "{what}: counted IoStats diverged");
    assert_eq!(got.phases, base.phases, "{what}: per-phase op counts diverged");
    assert_eq!(got.comm, base.comm, "{what}: message ledger diverged");
    assert_eq!(got.lambda, base.lambda, "{what}: λ diverged");
    // Compare drive bytes without letting a failure dump whole drive files.
    let base_names: Vec<&str> = base.drive_bytes.iter().map(|(n, _)| n.as_str()).collect();
    let got_names: Vec<&str> = got.drive_bytes.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(got_names, base_names, "{what}: drive file set diverged");
    for ((name, b), (_, g)) in base.drive_bytes.iter().zip(&got.drive_bytes) {
        assert!(g == b, "{what}: drive file {name} bytes diverged");
    }
}

/// The full lane matrix: cache {off, small, working-set} × both simulators
/// × pipeline {`Off`, `DoubleBuffer` ≡ `Stream(1)`, `Stream(2)`,
/// `Stream(8)`} × `ComputeMode::{Serial, Threaded(2)}` on a sort
/// workload over a file backend, requiring identical outputs and identical
/// [`Fingerprint`]s, and requiring the cached lanes to actually absorb
/// traffic (hits and buffered writes both nonzero).
#[test]
fn sort_fingerprint_is_cache_invariant() {
    let mut rng = StdRng::seed_from_u64(300);
    let items: Vec<u64> = (0..500).map(|_| rng.gen_range(0..4000)).collect();

    for pipeline in
        [Pipeline::Off, Pipeline::DoubleBuffer, Pipeline::Stream(2), Pipeline::Stream(8)]
    {
        for mode in [ComputeMode::Serial, ComputeMode::Threaded(2)] {
            // Uniprocessor simulator.
            let run_seq = |cache: usize| {
                let dir = scratch_dir();
                let rec = Recording::new(
                    SeqEmSimulator::new(em_machine(1))
                        .with_seed(77)
                        .with_pipeline(pipeline)
                        .with_compute_mode(mode)
                        .with_cache(cache)
                        .with_file_backend(&dir),
                );
                let out = cgm_sort(&rec, V, items.clone()).unwrap();
                let reports = rec.take_reports();
                let absorbed: u64 = reports.iter().map(|r| r.io.cache_absorbed_writes).sum();
                let hits: u64 = reports.iter().map(|r| r.io.cache_hit_blocks).sum();
                let fp = fingerprint(&reports, &dir);
                std::fs::remove_dir_all(&dir).ok();
                (out, fp, hits, absorbed)
            };
            let (base_out, base_fp, hits, absorbed) = run_seq(0);
            assert_eq!((hits, absorbed), (0, 0), "cache-off run must tally nothing");
            for cache in CACHES {
                let what = format!("sort: seq sim, {pipeline:?}, {mode:?}, cache={cache}B");
                let (out, fp, hits, absorbed) = run_seq(cache);
                assert_eq!(out, base_out, "{what}: output diverged");
                assert_fingerprints_match(&base_fp, &fp, &what);
                // A working-set-sized cache must see read hits; the 2-track
                // one may thrash its way to zero, but both must buffer
                // writes until the barrier.
                if cache >= CACHES[1] {
                    assert!(hits > 0, "{what}: expected cache hits");
                }
                assert!(absorbed > 0, "{what}: expected buffered writes");
            }

            // 3-processor simulator.
            let run_par = |cache: usize| {
                let dir = scratch_dir();
                let rec = Recording::new(
                    ParEmSimulator::new(em_machine(3))
                        .with_seed(78)
                        .with_pipeline(pipeline)
                        .with_compute_mode(mode)
                        .with_cache(cache)
                        .with_file_backend(&dir),
                );
                let out = cgm_sort(&rec, V, items.clone()).unwrap();
                let reports = rec.take_reports();
                let absorbed: u64 = reports.iter().map(|r| r.io.cache_absorbed_writes).sum();
                let fp = fingerprint(&reports, &dir);
                std::fs::remove_dir_all(&dir).ok();
                (out, fp, absorbed)
            };
            let (base_out, base_fp, absorbed) = run_par(0);
            assert_eq!(absorbed, 0, "cache-off run must tally nothing");
            for cache in CACHES {
                let what = format!("sort: par sim, {pipeline:?}, {mode:?}, cache={cache}B");
                let (out, fp, absorbed) = run_par(cache);
                assert_eq!(out, base_out, "{what}: output diverged");
                assert_fingerprints_match(&base_fp, &fp, &what);
                assert!(absorbed > 0, "{what}: expected buffered writes");
            }
        }
    }
}

/// A multi-round diffusion program whose state folds inbox contents
/// non-commutatively, so any cache-induced reordering or lost write is
/// visible in the final states.
struct ChainFold;
impl em_bsp::BspProgram for ChainFold {
    type State = u64;
    type Msg = u64;
    fn superstep(
        &self,
        step: usize,
        mb: &mut em_bsp::Mailbox<u64>,
        state: &mut u64,
    ) -> em_bsp::Step {
        for e in mb.take_incoming() {
            *state = state
                .wrapping_mul(0x0000_0100_0000_01B3)
                .wrapping_add(((e.src as u64) << 32) ^ e.msg);
        }
        let v = mb.nprocs();
        if step < 4 {
            for j in 1..=3u64 {
                mb.send((mb.pid() + j as usize) % v, *state ^ j);
            }
            em_bsp::Step::Continue
        } else {
            em_bsp::Step::Halt
        }
    }
    fn max_state_bytes(&self) -> usize {
        124
    }
    fn max_comm_bytes(&self) -> usize {
        3 * 24
    }
}

/// Cross-cache `FaultReport` identity in the one regime where it is
/// well-defined: transient faults pinned at per-drive op indices low
/// enough that the cache-on and cache-off runs both consume every one,
/// with a retry budget that absorbs them all. On the uniprocessor
/// simulator (a single fault-event stream) final states, the ledger, the
/// counted I/O and the report's injection/retry tallies must then be
/// bit-identical with the cache on or off. On the parallel simulator each
/// worker holds its own copy of the plan's event map, and the cache
/// changes each worker's raw per-drive op sequence — so *which* events
/// fire is legitimately cache-dependent there; the outcome-level contract
/// (states, ledger, masked counted I/O, no replays) must still hold.
#[test]
fn absorbed_transients_report_identically_across_cache_modes() {
    use em_disk::{FaultPlan, RetryPolicy};

    let init: Vec<u64> = (0..V as u64).map(|i| i * 9 + 2).collect();
    // Transients on every drive within the first few raw ops: any run of
    // this workload — cached or not — performs well past 4 raw operations
    // per drive (the initial context distribution alone writes to all of
    // them), so both runs consume the full plan. One event per drive, so
    // a retry (which advances that drive's op sequence) never trips a
    // second event and the budget of 4 absorbs every fault.
    let plan = || {
        FaultPlan::none()
            .with_transient(0, 1)
            .with_transient(1, 2)
            .with_transient(2, 0)
            .with_transient(3, 3)
    };

    for par in [false, true] {
        let run = |cache: usize| {
            if par {
                ParEmSimulator::new(em_machine(3))
                    .with_seed(78)
                    .with_checksums(true)
                    .with_fault_plan(plan())
                    .with_retry(RetryPolicy::new(4))
                    .with_cache(cache)
                    .run(&ChainFold, init.clone())
                    .unwrap()
            } else {
                SeqEmSimulator::new(em_machine(1))
                    .with_seed(77)
                    .with_checksums(true)
                    .with_fault_plan(plan())
                    .with_retry(RetryPolicy::new(4))
                    .with_cache(cache)
                    .run(&ChainFold, init.clone())
                    .unwrap()
            }
        };
        let (base_res, base_report) = run(0);
        let base_faults = base_report.faults.clone().expect("fault run carries a report");
        if !par {
            assert_eq!(base_faults.injected.total(), 4, "all pinned transients must fire");
        }
        assert!(base_faults.injected.total() > 0);
        for cache in CACHES {
            let what = format!("{} sim, cache={cache}B", if par { "par" } else { "seq" });
            let (res, report) = run(cache);
            assert_eq!(res.states, base_res.states, "{what}: final states diverged");
            assert_eq!(res.ledger, base_res.ledger, "{what}: ledger diverged");
            let mut masked = report.io.clone();
            masked.cache_hit_blocks = 0;
            masked.cache_absorbed_writes = 0;
            let base_io = base_report.io.clone();
            if par {
                // Which per-worker events fire is cache-dependent on the
                // parallel simulator (see above), so the uncounted retry
                // telemetry may drift there; everything counted may not.
                masked.retried_blocks = base_io.retried_blocks;
            }
            assert_eq!(masked, base_io, "{what}: counted IoStats diverged");
            let faults = report.faults.expect("fault run carries a report");
            assert!(faults.injected.total() > 0, "{what}: plan must still fire");
            assert_eq!(faults.replays, 0, "{what}: retry budget must absorb every fault");
            assert!(faults.failed_superstep.is_none(), "{what}: run must succeed");
            if !par {
                assert_eq!(faults, base_faults, "{what}: FaultReport diverged");
            }
        }
    }
}

/// Superstep replay through a *warm* cache: a burst of transients
/// mid-run exhausts the retry budget and forces a rollback + replay while
/// cached blocks from earlier supersteps are still resident. The
/// recovered run must match the fault-free reference in final states and
/// counted parallel I/O on both simulators.
#[test]
fn warm_cache_replay_matches_fault_free_run() {
    use em_core::RecoveryPolicy;
    use em_disk::{FaultPlan, RetryPolicy};

    let init: Vec<u64> = (0..V as u64).map(|i| i * 9 + 2).collect();
    let reference = em_bsp::run_sequential(&ChainFold, init.clone()).unwrap().states;

    for cache in CACHES {
        for par in [false, true] {
            let what = format!("{} sim, cache={cache}B", if par { "par" } else { "seq" });
            let build_plan = || FaultPlan::seeded(fault_seed(), 4, 300, 30);
            let (res, report) = if par {
                ParEmSimulator::new(em_machine(3))
                    .with_seed(78)
                    .with_checksums(true)
                    .with_fault_plan(build_plan())
                    .with_retry(RetryPolicy::new(4))
                    .with_recovery(RecoveryPolicy::new(64))
                    .with_cache(cache)
                    .run(&ChainFold, init.clone())
                    .unwrap()
            } else {
                SeqEmSimulator::new(em_machine(1))
                    .with_seed(77)
                    .with_checksums(true)
                    .with_fault_plan(build_plan())
                    .with_retry(RetryPolicy::new(4))
                    .with_recovery(RecoveryPolicy::new(64))
                    .with_cache(cache)
                    .run(&ChainFold, init.clone())
                    .unwrap()
            };
            assert_eq!(res.states, reference, "{what}: recovered states diverged");
            // The clean comparator: same simulator, no faults, no cache.
            let (clean_res, clean_report) = if par {
                ParEmSimulator::new(em_machine(3))
                    .with_seed(78)
                    .with_checksums(true)
                    .run(&ChainFold, init.clone())
                    .unwrap()
            } else {
                SeqEmSimulator::new(em_machine(1))
                    .with_seed(77)
                    .with_checksums(true)
                    .run(&ChainFold, init.clone())
                    .unwrap()
            };
            assert_eq!(res.states, clean_res.states);
            assert_eq!(
                report.io.parallel_ops, clean_report.io.parallel_ops,
                "{what}: retries/replays/cache must not leak into counted parallel I/O"
            );
        }
    }
}
