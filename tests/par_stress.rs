//! Stress the multiprocessor simulator's exchange protocol: deliberately
//! skewed per-thread compute plus many rounds and supersteps, so a fast
//! thread is always a full exchange ahead of a slow one. Regression test
//! for the phase-mixing race (bundles of adjacent exchanges must never be
//! merged).

use em_bsp::{run_sequential, BspProgram, BspStarParams, Mailbox, Step};
use em_core::{EmMachine, ParEmSimulator};

/// Every virtual processor forwards an evolving digest to pseudo-random
/// destinations; low pids additionally burn compute so the thread owning
/// them lags the others.
struct Skewed {
    rounds: usize,
}

impl BspProgram for Skewed {
    type State = u64;
    type Msg = u64;

    fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut u64) -> Step {
        for e in mb.take_incoming() {
            *state = state.wrapping_mul(1099511628211).wrapping_add(e.msg ^ e.src as u64);
        }
        // Skew: the first few virtual processors do real work.
        if mb.pid() < 4 {
            let mut x = *state | 1;
            for _ in 0..200_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            *state ^= x >> 17;
        }
        if step < self.rounds {
            let v = mb.nprocs();
            for f in 0..3 {
                let dst = (mb.pid() * 31 + step * 7 + f * 13) % v;
                mb.send(dst, *state ^ (f as u64) << 20);
            }
            Step::Continue
        } else {
            Step::Halt
        }
    }

    fn max_state_bytes(&self) -> usize {
        8
    }

    fn max_comm_bytes(&self) -> usize {
        // 3 sends of 24 envelope bytes; receives up to v*3.
        24 * 3 * 48 + 64
    }
}

#[test]
fn skewed_parallel_simulation_is_deterministic_and_correct() {
    let v = 48;
    let prog = Skewed { rounds: 8 };
    let init: Vec<u64> = (0..v as u64).map(|i| i * 7 + 1).collect();
    let reference = run_sequential(&prog, init.clone()).unwrap();

    let machine = EmMachine {
        p: 4,
        m_bytes: 1 << 12,
        d: 4,
        b_bytes: 256,
        g_io: 1,
        router: BspStarParams { p: 4, g: 1.0, b: 256, l: 1.0 },
    };
    let mut first_ops = None;
    for trial in 0..3 {
        let sim = ParEmSimulator::new(machine).with_seed(1234);
        let (res, report) = sim.run(&prog, init.clone()).unwrap();
        assert_eq!(res.states, reference.states, "trial {trial} diverged");
        match first_ops {
            None => first_ops = Some(report.io.parallel_ops),
            Some(ops) => assert_eq!(
                report.io.parallel_ops, ops,
                "trial {trial}: same seed must give the same I/O trace"
            ),
        }
    }
}
