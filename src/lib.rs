//! Facade crate re-exporting the em-sim workspace.
#![warn(missing_docs)]

pub use em_algos as algos;
pub use em_baselines as baselines;
pub use em_bsp as bsp;
pub use em_core as core;
pub use em_disk as disk;
pub use em_serial as serial;
pub use em_service as service;
