//! A GIS-flavoured geometry pipeline (the application domain the paper's
//! introduction motivates): on one out-of-core point dataset, compute the
//! convex hull, weighted dominance counts, and a batch of predecessor
//! queries — each a Table 1 Group B algorithm — through one recording
//! external-memory simulator, then inspect the accumulated cost.
//!
//! Run with: `cargo run --release --example gis_pipeline`

use em_sim::algos::geometry::dominance::cgm_dominance_counts;
use em_sim::algos::geometry::hull::cgm_convex_hull_with_budget;
use em_sim::algos::geometry::next_element::cgm_predecessor;
use em_sim::algos::geometry::Point2;
use em_sim::core::{EmMachine, Recording, SeqEmSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 40_000usize;
    let v = 32;
    let mut rng = StdRng::seed_from_u64(7);

    // Synthetic "city" dataset: points in a disc, with weights (say,
    // population) attached.
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let x: i64 = rng.gen_range(-1_000_000..=1_000_000);
        let y: i64 = rng.gen_range(-1_000_000..=1_000_000);
        if x * x + y * y <= 1_000_000i64 * 1_000_000 {
            pts.push(Point2::new(x, y));
        }
    }
    let weighted: Vec<(Point2, u64)> = pts.iter().map(|&p| (p, rng.gen_range(1..1000))).collect();

    // One machine, one recording simulator for the whole pipeline.
    let machine = EmMachine::uniprocessor(256 * 1024, 4, 2048, 1);
    let rec = Recording::new(SeqEmSimulator::new(machine).with_seed(7));

    // 1. Convex hull — the service area boundary.
    let hull = cgm_convex_hull_with_budget(&rec, v, pts.clone(), 4096).unwrap();
    println!("convex hull: {} vertices", hull.len());

    // 2. Weighted dominance counts — for every city, the total population
    //    south-west of it.
    let counts = cgm_dominance_counts(&rec, v, &weighted).unwrap();
    let richest = counts.iter().enumerate().max_by_key(|&(_, c)| c).unwrap();
    println!("dominance: city #{} dominates weight {}", richest.0, richest.1);

    // 3. Batched next-element search — snap river gauge readings to the
    //    nearest station at or below them.
    let stations: Vec<i64> = (0..2000).map(|_| rng.gen_range(-500_000..500_000)).collect();
    let readings: Vec<i64> = (0..10_000).map(|_| rng.gen_range(-600_000..600_000)).collect();
    let snapped = cgm_predecessor(&rec, v, &stations, &readings).unwrap();
    let hits = snapped.iter().filter(|s| s.is_some()).count();
    println!("next-element: {hits}/{} readings snapped", readings.len());

    // The bill for the whole pipeline.
    println!("\npipeline cost across {} stages:", rec.reports.lock().len());
    println!(
        "  {} parallel I/O operations, λ = {}, charged I/O time = {}",
        rec.total_io_ops(),
        rec.total_lambda(),
        rec.total_io_time()
    );
    for (i, r) in rec.take_reports().iter().enumerate() {
        println!("  stage {i}: {}", r.summary());
    }
}
