//! Quickstart: write a tiny BSP program and run it four ways — the
//! sequential reference, the threaded BSP machine, the uniprocessor
//! external-memory simulation, and the multiprocessor external-memory
//! simulation — and look at what the EM runs cost.
//!
//! Run with: `cargo run --release --example quickstart`

use em_sim::bsp::{
    run_sequential, BspProgram, BspStarParams, Executor, Mailbox, Step, ThreadedRunner,
};
use em_sim::core::{EmMachine, KillPoint, ParEmSimulator, SeqEmSimulator};
use em_sim::disk::Pipeline;
use em_sim::serial::impl_serial_struct;
use em_sim::service::{JobSpec, ServiceConfig, SimService};

/// A parallel prefix-sum: every virtual processor holds a chunk of
/// numbers; one communication round distributes the chunk sums, then
/// everyone finishes locally. λ = 2 — a miniature CGM algorithm.
struct PrefixSum {
    chunk: usize,
}

#[derive(Debug, Clone, PartialEq)]
struct Chunk {
    data: Vec<u64>,
}
impl_serial_struct!(Chunk { data });

impl BspProgram for PrefixSum {
    type State = Chunk;
    type Msg = u64;

    fn superstep(&self, step: usize, mb: &mut Mailbox<u64>, state: &mut Chunk) -> Step {
        match step {
            0 => {
                let local: u64 = state.data.iter().sum();
                for dst in mb.pid() + 1..mb.nprocs() {
                    mb.send(dst, local);
                }
                Step::Continue
            }
            _ => {
                let mut acc: u64 = mb.take_incoming().iter().map(|e| e.msg).sum();
                for x in &mut state.data {
                    acc += *x;
                    *x = acc;
                }
                Step::Halt
            }
        }
    }

    fn max_state_bytes(&self) -> usize {
        16 + 8 * (self.chunk + 2)
    }

    fn max_comm_bytes(&self) -> usize {
        24 * 64 + 64
    }
}

fn main() {
    let v = 16; // virtual processors
    let chunk = 1024; // numbers per processor
    let prog = PrefixSum { chunk };
    let states: Vec<Chunk> = (0..v).map(|i| Chunk { data: vec![i as u64 + 1; chunk] }).collect();

    // 1. Sequential in-memory reference.
    let reference = run_sequential(&prog, states.clone()).unwrap();
    println!(
        "reference: λ = {}, last prefix = {}",
        reference.supersteps(),
        reference.states.last().unwrap().data.last().unwrap()
    );

    // 2. Real threads + barriers.
    let threaded = ThreadedRunner::new(4).run(&prog, states.clone()).unwrap();
    assert_eq!(threaded.states, reference.states);
    println!("threaded:  identical result on 4 worker threads");

    // 3. The paper's simulation: a machine with 64 KiB of memory and 4
    //    disks executes the same program out of core. `with_cache` turns
    //    on the write-back block cache and `with_pipeline` streams each
    //    compound superstep through a 2-deep window of groups in flight
    //    (`Pipeline::DoubleBuffer` is the depth-1 case) — counted I/O
    //    and final states are bit-identical to a plain run; the
    //    summary's cache_hits / cache_absorbed tallies show the traffic
    //    the cache soaked up. (`with_compute_mode(Threaded(n))` — a
    //    persistent in-group worker pool that also parallelizes
    //    reorganization planning — `with_pinned_workers` and
    //    `with_engine(EngineKind::Uring)` are further wall-clock-only
    //    knobs under the same contract, and `ComputeMode::Auto` +
    //    `Pipeline::Auto` + `with_auto_cache(true)` let an `AutoTuner`
    //    pick them, recording the choice in
    //    `CostReport::resolved_config`; DESIGN.md §3.2.10–§3.2.11.)
    let machine = EmMachine::uniprocessor(64 * 1024, 4, 1024, 1);
    let sim = SeqEmSimulator::new(machine).with_cache(32 * 1024).with_pipeline(Pipeline::Stream(2));
    let (res, report) = sim.run(&prog, states.clone()).unwrap();
    assert_eq!(res.states, reference.states);
    println!("\nuniprocessor EM simulation (Algorithms 1+2, 32 KiB cache):");
    println!("  {}", report.summary());
    for check in &report.checks {
        println!(
            "  [{}] {} ({})",
            if check.satisfied { "ok" } else { "!!" },
            check.condition,
            check.detail
        );
    }

    // 4. Three real processors, each with its own 4 disks (Algorithm 3).
    let machine = EmMachine {
        p: 3,
        m_bytes: 64 * 1024,
        d: 4,
        b_bytes: 1024,
        g_io: 1,
        router: BspStarParams { p: 3, g: 1.0, b: 1024, l: 1.0 },
    };
    let (res, report) = ParEmSimulator::new(machine).run(&prog, states.clone()).unwrap();
    assert_eq!(res.states, reference.states);
    println!("\n3-processor EM simulation (Algorithm 3):");
    println!("  {}", report.summary());
    println!("  real inter-processor traffic: {} KiB", report.real_comm_bytes / 1024);

    // 5. The same program as a *tenant* of the multi-tenant service
    //    (`em-service`): admission reserves v·μ+γ of a shared budget and
    //    a disjoint track region of a shared disk array; metering stays
    //    per-tenant and bit-identical to the solo run above (see
    //    DESIGN.md §3.2.8 and `tests/service.rs`).
    let machine = EmMachine::uniprocessor(64 * 1024, 4, 1024, 1);
    let service = SimService::new(ServiceConfig::new(4, 1024, 1 << 14, 1 << 22));
    let lease = service
        .admit(
            JobSpec::new("quickstart", 0, machine, v)
                .with_budgets(prog.max_state_bytes(), prog.max_comm_bytes())
                .with_tracks(1 << 12),
        )
        .unwrap();
    let res = lease.execute(&prog, states).unwrap();
    assert_eq!(res.states, reference.states);
    let record = lease.complete();
    println!("\nas a service tenant:");
    println!(
        "  metered {} parallel I/O ops, state fingerprint {:08x}",
        record.total_io_ops(),
        record.state_fingerprint
    );

    // 6. Kill and resume: with the file backend and checkpointing on,
    //    every barrier commits an atomic manifest. Here we simulate a
    //    crash right at the first barrier (`with_kill_point` is the
    //    test hook the chaos harness uses); `resume` picks up from the
    //    newest committed manifest and the result — states, ledger,
    //    *and counted I/O* — is bit-identical to an uninterrupted run
    //    (DESIGN.md §3.2.9).
    let dir = std::env::temp_dir().join(format!("em-sim-quickstart-{}", std::process::id()));
    let machine = EmMachine::uniprocessor(64 * 1024, 4, 1024, 1);
    let sim = SeqEmSimulator::new(machine).with_file_backend(&dir).with_checkpointing(true);
    let crash = sim.clone().with_kill_point(KillPoint::AtBarrier(0));
    let states: Vec<Chunk> = (0..v).map(|i| Chunk { data: vec![i as u64 + 1; chunk] }).collect();
    let err = crash.run(&prog, states).unwrap_err();
    let (res, report) = sim.resume(&prog).unwrap();
    assert_eq!(res.states, reference.states);
    println!("\nkilled and resumed:");
    println!("  crash: {err}");
    println!("  resumed to the identical result; {}", report.summary());
    std::fs::remove_dir_all(&dir).ok();
}
