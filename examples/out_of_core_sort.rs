//! Out-of-core sorting on *real files*: sort a dataset much larger than
//! the configured memory through the file-backed disk array, and compare
//! the simulated CGM sample sort against the hand-crafted Aggarwal–Vitter
//! external merge sort on the same substrate.
//!
//! Run with: `cargo run --release --example out_of_core_sort`

use em_sim::algos::sort::cgm_sort;
use em_sim::baselines::ExternalSort;
use em_sim::core::{EmMachine, Recording, SeqEmSimulator};
use em_sim::disk::{DiskArray, DiskConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 400_000usize; // 3.2 MB of records
    let m = 128 * 1024; // 128 KiB of "memory" — 25x smaller than the data
    let d = 4;
    let b = 4096;
    let v = 64;

    let mut rng = StdRng::seed_from_u64(42);
    let items: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    let dir = std::env::temp_dir().join(format!("em-sim-sort-{}", std::process::id()));
    println!("sorting {n} u64 records with M = {m} B on {d} file-backed disks under {dir:?}\n");

    // Hand-crafted baseline on real files.
    let cfg = DiskConfig::new(d, b).unwrap();
    let mut disks = DiskArray::new_file(cfg, dir.join("baseline")).unwrap();
    let t0 = Instant::now();
    let (sorted_av, stats) = ExternalSort { m_bytes: m }.run(&mut disks, items.clone()).unwrap();
    println!(
        "Aggarwal-Vitter merge sort: {} parallel I/Os ({} runs, {} passes, util {:.2}) in {:?}",
        stats.io.parallel_ops,
        stats.runs,
        stats.passes,
        stats.io.utilization(),
        t0.elapsed()
    );

    // The paper's route: take the *parallel* CGM sample sort unchanged and
    // simulate it on the same machine shape.
    let machine = EmMachine::uniprocessor(m, d, b, 1);
    let rec = Recording::new(SeqEmSimulator::new(machine).with_file_backend(dir.join("sim")));
    let t0 = Instant::now();
    let sorted_sim = cgm_sort(&rec, v, items).unwrap();
    let wall = t0.elapsed();
    assert_eq!(sorted_sim, sorted_av);
    let report = rec.take_reports().pop().unwrap();
    println!(
        "simulated CGM sample sort:  {} parallel I/Os (λ = {}, k = {}, util {:.2}) in {:?}",
        report.io.parallel_ops,
        report.lambda,
        report.k,
        report.io.utilization(),
        wall
    );
    println!(
        "\nthe generic simulation costs {:.1}x the hand-tuned sort in I/Os —\n\
         the constant the paper trades for parallelism and generality\n\
         (run the table1 harness to see the p-processor side win it back).",
        report.io.parallel_ops as f64 / stats.io.parallel_ops as f64
    );

    std::fs::remove_dir_all(&dir).ok();
}
