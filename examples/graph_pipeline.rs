//! An out-of-core graph pipeline (Table 1 Group C): rank a linked list,
//! compute tree depths and subtree sizes via the Euler tour, and find the
//! connected components and a spanning forest of a random graph — all on
//! the multiprocessor external-memory simulator (Algorithm 3).
//!
//! Run with: `cargo run --release --example graph_pipeline`

use em_sim::algos::graph::cc::cgm_connected_components;
use em_sim::algos::graph::euler::cgm_euler_tree;
use em_sim::algos::graph::list_ranking::{cgm_list_rank, random_chain};
use em_sim::bsp::BspStarParams;
use em_sim::core::{EmMachine, ParEmSimulator, Recording};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let v = 32;
    let p = 4;
    let machine = EmMachine {
        p,
        m_bytes: 256 * 1024,
        d: 4,
        b_bytes: 2048,
        g_io: 1,
        router: BspStarParams { p, g: 1.0, b: 2048, l: 1.0 },
    };
    let rec = Recording::new(ParEmSimulator::new(machine).with_seed(3));
    let mut rng = StdRng::seed_from_u64(3);

    // 1. List ranking on a shuffled 20k-node chain.
    let n = 20_000;
    let succ = random_chain(n, 11);
    let ranks = cgm_list_rank(&rec, v, &succ, &vec![1u64; n]).unwrap();
    let head = ranks.iter().enumerate().max_by_key(|&(_, r)| r).unwrap();
    println!("list ranking: head is node {} with rank {}", head.0, head.1);

    // 2. Euler tour on a random 8k-vertex tree.
    let n = 8_000;
    let edges: Vec<(u64, u64)> = (1..n as u64).map(|i| (rng.gen_range(0..i), i)).collect();
    let info = cgm_euler_tree(&rec, v, n, &edges, 0).unwrap();
    let deepest = info.depth.iter().enumerate().max_by_key(|&(_, d)| d).unwrap();
    println!(
        "euler tour: deepest vertex {} at depth {}, root subtree size {}",
        deepest.0, deepest.1, info.size[0]
    );

    // 3. Connected components of a sparse random graph.
    let n = 10_000;
    let edges: Vec<(u64, u64)> = (0..n / 2)
        .map(|_| (rng.gen_range(0..n as u64), rng.gen_range(0..n as u64)))
        .filter(|&(a, b)| a != b)
        .collect();
    let cc = cgm_connected_components(&rec, v, n, &edges).unwrap();
    let comps: std::collections::HashSet<u64> = cc.label.iter().copied().collect();
    println!(
        "connected components: {} components, spanning forest of {} edges",
        comps.len(),
        cc.forest_edges.len()
    );
    assert_eq!(cc.forest_edges.len(), n - comps.len());

    // The bill, per stage and total.
    println!(
        "\ntotal across pipeline: {} parallel I/O ops (all {} processors), λ = {}",
        rec.total_io_ops(),
        p,
        rec.total_lambda()
    );
    for (i, r) in rec.take_reports().iter().enumerate() {
        println!("  stage {i}: {}", r.summary());
    }
}
